#include "sim/propagation.h"

#include <cmath>
#include <cstring>

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SND_PROPAGATION_X86 1
#else
#define SND_PROPAGATION_X86 0
#endif

namespace snd::sim {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_position(util::Vec2 p) {
  std::uint64_t xb = 0;
  std::uint64_t yb = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&xb, &p.x, sizeof(xb));
  std::memcpy(&yb, &p.y, sizeof(yb));
  return mix64(xb) ^ mix64(yb * 0x9e3779b97f4a7c15ULL);
}

// -- Strip classification ---------------------------------------------------
//
// One shared kernel: d² = (x - fx)² + (y - fy)² against a [lo, hi] band.
//   d² <= lo  ->  kLinkIn      (definite: implies the scalar predicate true)
//   d² >  hi  ->  kLinkOut     (definite: implies the scalar predicate false)
//   otherwise ->  kLinkCheck   (borderline: re-decided by scalar link_exists)
// Callers pick lo/hi so the definite verdicts hold with margin (see
// kClassBand); anything ambiguous -- including NaN, which fails both vector
// compares -- lands on kLinkCheck and the exact scalar comparison.

/// Relative width of the Check band around a threshold. Vector and scalar
/// d² use the same IEEE double ops so they agree exactly today; the band
/// keeps the definite verdicts sound even if one side is ever compiled
/// with FMA contraction.
constexpr double kClassBand = 1e-9;

void classify_scalar(util::Vec2 from, const double* xs, const double* ys, std::size_t n,
                     double lo, double hi, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - from.x;
    const double dy = ys[i] - from.y;
    const double d2 = dx * dx + dy * dy;
    out[i] = d2 <= lo ? kLinkIn : (d2 > hi ? kLinkOut : kLinkCheck);
  }
}

#if SND_PROPAGATION_X86

/// Class bytes for every (in_mask << 4 | out_mask) movemask pair: the vector
/// loops store four verdicts with one table row copy instead of four branchy
/// per-lane selects (which dominated the kernel under dense sweeps). Rows are
/// exact images of the scalar ternary, including the impossible in&out combos
/// (in wins, matching the scalar evaluation order) and NaN (neither bit set,
/// lands on kLinkCheck).
constexpr auto kClassTable = [] {
  std::array<std::array<std::uint8_t, 4>, 256> table{};
  for (int idx = 0; idx < 256; ++idx) {
    const int in_mask = idx >> 4;
    const int out_mask = idx & 0xF;
    for (int lane = 0; lane < 4; ++lane) {
      table[static_cast<std::size_t>(idx)][static_cast<std::size_t>(lane)] =
          ((in_mask >> lane) & 1) != 0 ? kLinkIn
          : ((out_mask >> lane) & 1) != 0 ? kLinkOut
                                          : kLinkCheck;
    }
  }
  return table;
}();

__attribute__((target("sse2"))) void classify_sse2(util::Vec2 from, const double* xs,
                                                   const double* ys, std::size_t n, double lo,
                                                   double hi, std::uint8_t* out) {
  const __m128d fx = _mm_set1_pd(from.x);
  const __m128d fy = _mm_set1_pd(from.y);
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), fx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), fy);
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const int in_mask = _mm_movemask_pd(_mm_cmple_pd(d2, vlo));
    const int out_mask = _mm_movemask_pd(_mm_cmpgt_pd(d2, vhi));
    // Two-lane masks only populate table lanes 0-1, so the 4-wide rows serve
    // here too; copy just the first two class bytes.
    std::memcpy(out + i, kClassTable[static_cast<std::size_t>(in_mask << 4 | out_mask)].data(),
                2);
  }
  if (i < n) classify_scalar(from, xs + i, ys + i, n - i, lo, hi, out + i);
}

__attribute__((target("avx2"))) void classify_avx2(util::Vec2 from, const double* xs,
                                                   const double* ys, std::size_t n, double lo,
                                                   double hi, std::uint8_t* out) {
  const __m256d fx = _mm256_set1_pd(from.x);
  const __m256d fy = _mm256_set1_pd(from.y);
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), fx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), fy);
    const __m256d d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const int in_mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, vlo, _CMP_LE_OQ));
    const int out_mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, vhi, _CMP_GT_OQ));
    std::memcpy(out + i, kClassTable[static_cast<std::size_t>(in_mask << 4 | out_mask)].data(),
                4);
  }
  if (i < n) classify_scalar(from, xs + i, ys + i, n - i, lo, hi, out + i);
}

#endif  // SND_PROPAGATION_X86

void classify_banded(util::Vec2 from, const double* xs, const double* ys, std::size_t n,
                     double lo, double hi, std::uint8_t* out) {
#if SND_PROPAGATION_X86
  switch (util::active_simd_tier()) {
    case util::SimdTier::kAvx2:
      classify_avx2(from, xs, ys, n, lo, hi, out);
      return;
    case util::SimdTier::kSse2:
      classify_sse2(from, xs, ys, n, lo, hi, out);
      return;
    case util::SimdTier::kScalar:
      break;
  }
#endif
  classify_scalar(from, xs, ys, n, lo, hi, out);
}

}  // namespace

void PropagationModel::classify_links(util::Vec2 /*from*/, const double* /*xs*/,
                                      const double* /*ys*/, std::size_t n,
                                      std::uint8_t* out) const {
  std::memset(out, kLinkCheck, n);
}

void UnitDiskModel::classify_links(util::Vec2 from, const double* xs, const double* ys,
                                   std::size_t n, std::uint8_t* out) const {
  const double threshold = range_ * range_;
  classify_banded(from, xs, ys, n, threshold * (1.0 - kClassBand),
                  threshold * (1.0 + kClassBand), out);
}

void LogNormalModel::classify_links(util::Vec2 from, const double* xs, const double* ys,
                                    std::size_t n, std::uint8_t* out) const {
  // No definite-In region: the per-link fade draw is unbounded below, so
  // lo = -1 keeps every near candidate on the scalar path.
  const double cutoff = max_range_ * max_range_;
  classify_banded(from, xs, ys, n, -1.0, cutoff * (1.0 + kClassBand), out);
}

Time PropagationModel::propagation_delay(double distance) {
  constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
  // llround, not a truncating cast: truncation biased every delay low by up
  // to 1 ns, which the RTT distance-bounding verifier folds into a ~0.15 m
  // per-leg underestimate.
  return Time::nanoseconds(std::llround(distance / kSpeedOfLight * 1e9));
}

bool UnitDiskModel::link_exists(util::Vec2 a, util::Vec2 b) const {
  return util::distance_squared(a, b) <= range_ * range_;
}

LogNormalModel::LogNormalModel(double range, double path_loss_exponent, double sigma_db,
                               std::uint64_t seed)
    : range_(range),
      exponent_(path_loss_exponent),
      sigma_db_(sigma_db),
      max_range_(range * std::pow(10.0, kFadeCapSigmas * sigma_db / (10.0 * path_loss_exponent))),
      seed_(seed) {}

double LogNormalModel::link_fade_db(util::Vec2 a, util::Vec2 b) const {
  // Symmetric link hash: XOR makes the fade independent of endpoint order.
  const std::uint64_t link_hash = mix64(hash_position(a) ^ hash_position(b) ^ seed_);
  // Two 32-bit halves -> uniform pair -> one normal draw (Box-Muller).
  const double u1 =
      (static_cast<double>(link_hash >> 32) + 1.0) / 4294967297.0;  // (0, 1)
  const double u2 = static_cast<double>(link_hash & 0xffffffffu) / 4294967296.0;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return sigma_db_ * z;
}

bool LogNormalModel::link_exists(util::Vec2 a, util::Vec2 b) const {
  const double d = util::distance(a, b);
  if (d <= 0.0) return true;
  if (d > max_range_) return false;  // truncated fade: see the class comment
  const double margin_db = 10.0 * exponent_ * std::log10(range_ / d) + link_fade_db(a, b);
  return margin_db >= 0.0;
}

}  // namespace snd::sim
