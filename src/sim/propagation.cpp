#include "sim/propagation.h"

#include <cmath>
#include <cstring>

namespace snd::sim {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_position(util::Vec2 p) {
  std::uint64_t xb = 0;
  std::uint64_t yb = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&xb, &p.x, sizeof(xb));
  std::memcpy(&yb, &p.y, sizeof(yb));
  return mix64(xb) ^ mix64(yb * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

Time PropagationModel::propagation_delay(double distance) {
  constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
  // llround, not a truncating cast: truncation biased every delay low by up
  // to 1 ns, which the RTT distance-bounding verifier folds into a ~0.15 m
  // per-leg underestimate.
  return Time::nanoseconds(std::llround(distance / kSpeedOfLight * 1e9));
}

bool UnitDiskModel::link_exists(util::Vec2 a, util::Vec2 b) const {
  return util::distance_squared(a, b) <= range_ * range_;
}

LogNormalModel::LogNormalModel(double range, double path_loss_exponent, double sigma_db,
                               std::uint64_t seed)
    : range_(range),
      exponent_(path_loss_exponent),
      sigma_db_(sigma_db),
      max_range_(range * std::pow(10.0, kFadeCapSigmas * sigma_db / (10.0 * path_loss_exponent))),
      seed_(seed) {}

double LogNormalModel::link_fade_db(util::Vec2 a, util::Vec2 b) const {
  // Symmetric link hash: XOR makes the fade independent of endpoint order.
  const std::uint64_t link_hash = mix64(hash_position(a) ^ hash_position(b) ^ seed_);
  // Two 32-bit halves -> uniform pair -> one normal draw (Box-Muller).
  const double u1 =
      (static_cast<double>(link_hash >> 32) + 1.0) / 4294967297.0;  // (0, 1)
  const double u2 = static_cast<double>(link_hash & 0xffffffffu) / 4294967296.0;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return sigma_db_ * z;
}

bool LogNormalModel::link_exists(util::Vec2 a, util::Vec2 b) const {
  const double d = util::distance(a, b);
  if (d <= 0.0) return true;
  if (d > max_range_) return false;  // truncated fade: see the class comment
  const double margin_db = 10.0 * exponent_ * std::log10(range_ / d) + link_fade_db(a, b);
  return margin_db >= 0.0;
}

}  // namespace snd::sim
