#include "sim/metrics.h"

namespace snd::sim {

Metrics::Counter Metrics::total() const {
  Counter sum;
  for (const Counter& counter : phases_) {
    sum.messages += counter.messages;
    sum.bytes += counter.bytes;
  }
  return sum;
}

std::map<std::string, Metrics::Counter, std::less<>> Metrics::by_category() const {
  std::map<std::string, Counter, std::less<>> out;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const Counter& counter = phases_[i];
    if (counter.messages == 0 && counter.bytes == 0) continue;
    out.emplace(std::string(obs::phase_name(static_cast<obs::Phase>(i))), counter);
  }
  return out;
}

std::uint64_t Metrics::total_drops() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t count : drops_) sum += count;
  return sum;
}

void Metrics::accumulate_into(obs::TraceSummary& summary) const {
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    summary.tx[i].messages += phases_[i].messages;
    summary.tx[i].bytes += phases_[i].bytes;
  }
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) summary.drops[i] += drops_[i];
  summary.deliveries += deliveries_;
}

void Metrics::reset() {
  phases_ = {};
  drops_ = {};
  deliveries_ = 0;
  candidates_ = 0;
}

}  // namespace snd::sim
