#include "sim/metrics.h"

namespace snd::sim {

void Metrics::count_tx(std::string_view category, std::size_t bytes) {
  if (const auto phase = obs::phase_from_name(category)) {
    count_tx(*phase, bytes);
    return;
  }
  auto it = extra_.find(category);
  if (it == extra_.end()) it = extra_.emplace(std::string(category), Counter{}).first;
  ++it->second.messages;
  it->second.bytes += bytes;
}

Metrics::Counter Metrics::total() const {
  Counter sum;
  for (const Counter& counter : phases_) {
    sum.messages += counter.messages;
    sum.bytes += counter.bytes;
  }
  for (const auto& [name, counter] : extra_) {
    sum.messages += counter.messages;
    sum.bytes += counter.bytes;
  }
  return sum;
}

Metrics::Counter Metrics::category(std::string_view name) const {
  if (const auto phase = obs::phase_from_name(name)) return this->phase(*phase);
  const auto it = extra_.find(name);
  return it != extra_.end() ? it->second : Counter{};
}

std::map<std::string, Metrics::Counter, std::less<>> Metrics::by_category() const {
  std::map<std::string, Counter, std::less<>> out;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const Counter& counter = phases_[i];
    if (counter.messages == 0 && counter.bytes == 0) continue;
    out.emplace(std::string(obs::phase_name(static_cast<obs::Phase>(i))), counter);
  }
  for (const auto& [name, counter] : extra_) {
    if (counter.messages == 0 && counter.bytes == 0) continue;
    auto [it, inserted] = out.emplace(name, counter);
    if (!inserted) {
      it->second.messages += counter.messages;
      it->second.bytes += counter.bytes;
    }
  }
  return out;
}

std::uint64_t Metrics::total_drops() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t count : drops_) sum += count;
  return sum;
}

void Metrics::accumulate_into(obs::TraceSummary& summary) const {
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    summary.tx[i].messages += phases_[i].messages;
    summary.tx[i].bytes += phases_[i].bytes;
  }
  auto& other = summary.tx[static_cast<std::size_t>(obs::Phase::kOther)];
  for (const auto& [name, counter] : extra_) {
    other.messages += counter.messages;
    other.bytes += counter.bytes;
  }
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) summary.drops[i] += drops_[i];
  summary.deliveries += deliveries_;
}

void Metrics::reset() {
  phases_ = {};
  drops_ = {};
  extra_.clear();
  deliveries_ = 0;
}

}  // namespace snd::sim
