#include "sim/metrics.h"

namespace snd::sim {

void Metrics::count_tx(std::string_view category, std::size_t bytes) {
  auto it = categories_.find(category);
  if (it == categories_.end()) it = categories_.emplace(std::string(category), Counter{}).first;
  ++it->second.messages;
  it->second.bytes += bytes;
}

Metrics::Counter Metrics::total() const {
  Counter sum;
  for (const auto& [name, counter] : categories_) {
    sum.messages += counter.messages;
    sum.bytes += counter.bytes;
  }
  return sum;
}

Metrics::Counter Metrics::category(std::string_view name) const {
  const auto it = categories_.find(name);
  return it != categories_.end() ? it->second : Counter{};
}

void Metrics::reset() {
  categories_.clear();
  deliveries_ = 0;
}

}  // namespace snd::sim
