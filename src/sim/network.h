// The simulated sensor field: physical devices, the shared radio channel,
// jamming, and per-category traffic metrics, driven by one Scheduler.
//
// Protocol code interacts with the network only through transmit() and a
// per-device receive callback; everything it can learn about its
// surroundings arrives in packets, as on real hardware. Ground-truth
// queries (positions, geometric links) exist for deployment tooling,
// direct-verification oracles, and auditing -- never for protocol logic.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/tracer.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/packet.h"
#include "sim/propagation.h"
#include "sim/scheduler.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace snd::sim {

/// A physical radio in the field. Replicas are separate devices sharing a
/// compromised identity.
struct Device {
  DeviceId id = kNoDevice;
  NodeId identity = kNoNode;
  util::Vec2 position;
  Time deployed_at;
  bool alive = true;
  bool compromised = false;
  bool replica = false;

  [[nodiscard]] bool benign() const { return !compromised && !replica; }
};

struct ChannelConfig {
  /// 802.15.4 data rate.
  double bit_rate_bps = 250'000.0;
  /// Independent per-delivery loss probability (in addition to jamming).
  double loss_probability = 0.0;
  /// Receiver-side MAC/processing latency per packet.
  Time processing_delay = Time::microseconds(500);

  /// Half-duplex MAC: a device's transmissions serialize (a new send waits
  /// for the previous one to clear the air), and a device cannot receive
  /// while it is transmitting. Off by default; ablation studies enable it.
  bool half_duplex = false;
};

/// Per-device energy accounting (mica2-class radio costs). When enabled, a
/// device that exhausts its budget dies -- the organic battery-death
/// process behind the paper's §4.4 motivation.
struct EnergyConfig {
  bool enabled = false;
  /// Initial budget per device, joules.
  double initial_j = 5.0;
  /// Transmit / receive energy per byte on the air.
  double tx_j_per_byte = 59.2e-6;
  double rx_j_per_byte = 28.6e-6;
};

class Network {
 public:
  Network(std::unique_ptr<PropagationModel> propagation, ChannelConfig config,
          std::uint64_t seed, EnergyConfig energy = {});

  // -- Deployment -----------------------------------------------------------
  /// Adds a device at `position`, stamped with the current simulation time.
  DeviceId add_device(NodeId identity, util::Vec2 position);
  DeviceId add_replica(NodeId identity, util::Vec2 position);

  [[nodiscard]] Device& device(DeviceId id) { return devices_.at(id); }
  [[nodiscard]] const Device& device(DeviceId id) const { return devices_.at(id); }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }

  /// Moves a device (mobility tooling, attacker repositioning): updates the
  /// ground-truth position AND re-buckets the spatial index, invalidating
  /// the cached candidate lists. Writing Device::position directly leaves
  /// the index stale -- transmissions would resolve receivers against the
  /// old cell -- so every position mutation must go through here.
  void set_position(DeviceId id, util::Vec2 position);

  /// All alive devices currently claiming `identity` (> 1 under
  /// replication), ascending by device id. Served from the identity index
  /// (devices never change identity), not a field scan: direct verifiers
  /// call this once per heard Hello, which made the O(n) scan the dominant
  /// O(n^2) term of million-node deployments.
  [[nodiscard]] std::vector<DeviceId> devices_with_identity(NodeId identity) const;

  // -- Radio ----------------------------------------------------------------
  /// Installs the receive callback for a device (one per device; protocol
  /// stacks multiplex on Packet::type).
  void set_receiver(DeviceId id, std::function<void(const Packet&)> handler);

  /// Transmits over the air from `from`. Every alive device with a radio
  /// link to the sender receives a copy (promiscuous delivery; agents filter
  /// on dst). Charged once to `phase` in the metrics; undelivered copies are
  /// charged to a typed obs::DropCause (kOutOfRange is the one cause whose
  /// count depends on the receiver-resolution strategy -- the grid enumerates
  /// a 3x3-block candidate superset, the linear fallback the whole field).
  void transmit(DeviceId from, Packet packet, obs::Phase phase);

  // -- Ground truth (tooling/auditing only) -----------------------------
  [[nodiscard]] bool link(DeviceId a, DeviceId b) const;
  [[nodiscard]] std::vector<DeviceId> devices_in_range(DeviceId id) const;

  /// Enables/disables the uniform-grid receiver index (on by default).
  /// Results are identical either way -- candidates enumerate in device-id
  /// order, so even the per-receiver loss-RNG draws match the linear scan
  /// bit for bit. The linear fallback exists for the bit-identity tests and
  /// the before/after micro_sim benchmark.
  void set_spatial_index_enabled(bool enabled) { use_spatial_index_ = enabled && indexable_; }
  [[nodiscard]] bool spatial_index_enabled() const { return use_spatial_index_; }

  // -- Fault injection ---------------------------------------------------
  /// Installs (or clears, with nullptr) the fault hook consulted once per
  /// delivery candidate that survived the channel. The hook is not owned;
  /// callers keep it alive for the Network's lifetime. With no hook the
  /// transmit path -- including every RNG draw -- is exactly the unhooked
  /// implementation, so clean runs stay byte-identical.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const { return fault_; }

  // -- Jamming ---------------------------------------------------------
  /// Returns a handle for remove_jammer. While active, any transmission
  /// whose sender or receiver sits inside the circle is destroyed.
  std::size_t add_jammer(util::Circle area);
  void remove_jammer(std::size_t handle);
  [[nodiscard]] bool jammed(util::Vec2 position) const;

  // -- Infrastructure ---------------------------------------------------
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] Time now() const { return scheduler_.now(); }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  /// Per-network event tracer (level/sink from obs::default_trace() at
  /// construction). Protocol layers emit phase/reject/accept events here.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }
  /// One-trial summary combining the always-on radio accounting (Metrics)
  /// with the tracer's protocol counters; trials is set to 1 so Registry
  /// folds count trials correctly.
  [[nodiscard]] obs::TraceSummary trace_summary() const;
  [[nodiscard]] const PropagationModel& propagation() const { return *propagation_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  [[nodiscard]] Time transmission_time(std::size_t wire_bytes) const;
  [[nodiscard]] const ChannelConfig& channel_config() const { return config_; }

  /// Total bytes this device has put on the air (radio/energy load).
  [[nodiscard]] std::uint64_t tx_bytes(DeviceId id) const { return tx_bytes_.at(id); }
  /// Heaviest per-device radio load in the network (hotspot metric).
  [[nodiscard]] std::uint64_t max_tx_bytes() const;

  /// Remaining energy budget, joules (initial_j when accounting is off).
  [[nodiscard]] double energy_j(DeviceId id) const { return energy_j_.at(id); }
  /// Overrides one device's remaining budget (heterogeneous batteries).
  void set_energy_j(DeviceId id, double joules) { energy_j_.at(id) = joules; }
  [[nodiscard]] const EnergyConfig& energy_config() const { return energy_; }

 private:
  /// Drains `joules` from a device; kills it at exhaustion.
  void drain(DeviceId id, double joules);

  void transmit_impl(DeviceId from, Packet packet, obs::Phase phase);

  /// Delivers one in-flight copy of `packet` to `to`, re-running the
  /// delivery-time checks (alive, receiver installed, half-duplex overlap
  /// against [start, airtime_end), rx energy) before handing the packet to
  /// the receive callback. Shared by the normal transmit path and
  /// fault-injected duplicate/delayed/corrupted copies.
  void deliver_copy(DeviceId to, const std::shared_ptr<const Packet>& packet, Time start,
                    Time airtime_end, obs::Phase phase);

  /// Counts an undelivered copy in both the typed metrics and the tracer.
  void note_drop(obs::DropCause cause, NodeId node, NodeId peer, std::uint32_t bytes);

  /// Traces one fault-injection application (tracer only; the authoritative
  /// counts live in the installed FaultHook implementation).
  void note_inject(obs::InjectKind kind, NodeId node, NodeId peer, std::uint32_t bytes);

  // -- Spatial index -----------------------------------------------------
  // Sparse uniform grid over device positions with cell side
  // propagation()->max_range(): every device within radio reach of a point
  // lies in the 3x3 cell block around it. Positions mutate only through
  // set_position(), which re-buckets the device and bumps grid_version_;
  // dead devices stay indexed and are filtered at query time, because
  // `alive` is ground-truth state that tooling toggles in both directions
  // (kill/revive). The merged, id-sorted candidate list of each 3x3 block
  // is cached per cell (deployment is rare, transmission constant), so
  // steady-state receiver resolution is one hash lookup.
  void grid_insert(DeviceId id, util::Vec2 position);
  /// Device ids in cells reachable from `center`, ascending id order -- a
  /// superset of the linked set; callers re-filter with link_exists. The
  /// returned reference is valid until the next add_device.
  [[nodiscard]] const std::vector<DeviceId>& candidates_near(util::Vec2 center) const;
  /// Applies `fn` to every Device that could possibly hear a transmission
  /// from `center`, in ascending device-id order (including dead devices
  /// and the device at `center` itself -- callers filter).
  template <typename Fn>
  void for_each_candidate(util::Vec2 center, Fn&& fn) const;

  /// Recycled Packet buffers for the transmit path (data-oriented core).
  /// Each transmission shares one immutable Packet among its delivery
  /// events; with the pool, the Packet (and its payload's heap buffer) is
  /// returned to a free list when the last event releases it instead of
  /// going back to the allocator. Null when util::soa_enabled() is off at
  /// construction -- the seed make_shared path is kept verbatim. Deleters
  /// hold a weak_ptr, so teardown order against the scheduler is safe; the
  /// member is still declared before scheduler_ so pooled packets owned by
  /// pending events are recycled (not leaked) during destruction.
  struct PacketPool {
    std::vector<std::unique_ptr<Packet>> free;
  };
  std::shared_ptr<PacketPool> packet_pool_;

  /// Wraps `packet` for sharing across delivery events: pooled when the
  /// pool exists, plain make_shared otherwise.
  [[nodiscard]] std::shared_ptr<const Packet> share_packet(Packet&& packet);

  // -- Strip filter ------------------------------------------------------
  // SoA mirrors of every device's position, maintained by add_device and
  // set_position alongside Device::position. transmit_impl feeds candidate
  // strips from these (contiguous doubles, not scattered Device fields)
  // into PropagationModel::classify_links, which emits a survivor-class
  // mask ahead of the scalar delivery bookkeeping. Enabled when the SIMD
  // gate was on at construction and the model supports link classes;
  // results are bit-identical either way (definite verdicts imply the
  // scalar predicate; borderline candidates re-check scalar).
  std::vector<double> pos_x_;
  std::vector<double> pos_y_;
  /// Scratch reused across transmissions: gathered candidate positions
  /// (grid path) and the per-candidate class mask.
  std::vector<double> strip_x_;
  std::vector<double> strip_y_;
  std::vector<std::uint8_t> strip_class_;
  bool strip_filter_ = false;

  std::unique_ptr<PropagationModel> propagation_;
  ChannelConfig config_;
  EnergyConfig energy_;
  util::Rng rng_;
  Scheduler scheduler_;
  Metrics metrics_;
  obs::Tracer tracer_;
  std::vector<Device> devices_;
  std::vector<std::function<void(const Packet&)>> receivers_;
  std::vector<std::uint64_t> tx_bytes_;
  std::vector<double> energy_j_;
  /// Half-duplex: each device's latest contiguous transmit run,
  /// [tx_run_start_, tx_busy_until_). A receiver misses a packet iff this
  /// run overlaps the packet's airtime (see transmit()).
  std::vector<Time> tx_busy_until_;
  std::vector<Time> tx_run_start_;
  std::vector<std::optional<util::Circle>> jammers_;
  /// identity -> device ids claiming it (ascending: ids are appended in
  /// creation order). Identities are append-only, so the index never needs
  /// rebucketing; `alive` is filtered at query time like the grid.
  std::unordered_map<NodeId, std::vector<DeviceId>> identity_index_;
  FaultHook* fault_ = nullptr;

  /// Cell side of the spatial index (propagation max_range); devices are
  /// bucketed by floor(position / cell_size_).
  double cell_size_ = 0.0;
  /// False when the propagation model's reach is unbounded or degenerate.
  bool indexable_ = false;
  bool use_spatial_index_ = false;
  std::unordered_map<std::uint64_t, std::vector<DeviceId>> grid_;
  /// Memoized 3x3-block candidate lists, stamped with the deployment
  /// version that built them; rebuilt lazily after any topology mutation.
  struct BlockCache {
    std::uint64_t version = 0;
    std::vector<DeviceId> candidates;
  };
  mutable std::unordered_map<std::uint64_t, BlockCache> block_cache_;
  /// Bumped on every add_device and cell-crossing set_position; invalidates
  /// all cached blocks at once.
  std::uint64_t grid_version_ = 0;
};

}  // namespace snd::sim
