#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/simd.h"
#include "util/soa.h"

namespace snd::sim {

namespace {

/// Pooled packets are recycled, not destroyed; cap the free list so a
/// delivery burst cannot pin an unbounded amount of payload memory.
constexpr std::size_t kMaxPooledPackets = 1024;

}  // namespace

namespace {

/// Packs a cell coordinate pair into one hash-map key. Coordinates are
/// floor(position / max_range), so any realistic field fits 32 bits per
/// axis; if a coordinate ever overflows, distinct cells may share a bucket,
/// which only enlarges the candidate superset (queries re-filter with
/// link_exists), never loses a device.
std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

std::int64_t cell_coord(double v, double cell_size) {
  return static_cast<std::int64_t>(std::floor(v / cell_size));
}

}  // namespace

Network::Network(std::unique_ptr<PropagationModel> propagation, ChannelConfig config,
                 std::uint64_t seed, EnergyConfig energy)
    : propagation_(std::move(propagation)), config_(config), energy_(energy), rng_(seed) {
  assert(propagation_ != nullptr);
  cell_size_ = propagation_->max_range();
  indexable_ = std::isfinite(cell_size_) && cell_size_ > 0.0;
  use_spatial_index_ = indexable_;
  strip_filter_ = util::simd_enabled() && propagation_->supports_link_classes();
  if (util::soa_enabled()) packet_pool_ = std::make_shared<PacketPool>();
}

std::shared_ptr<const Packet> Network::share_packet(Packet&& packet) {
  if (packet_pool_ == nullptr) return std::make_shared<const Packet>(std::move(packet));
  std::unique_ptr<Packet> slot;
  if (!packet_pool_->free.empty()) {
    slot = std::move(packet_pool_->free.back());
    packet_pool_->free.pop_back();
    *slot = std::move(packet);  // reuses the recycled payload's heap buffer
  } else {
    slot = std::make_unique<Packet>(std::move(packet));
  }
  // The deleter returns the Packet to the pool if the pool still exists
  // (weak_ptr: delivery events can outlive the Network only during its own
  // destruction, where the lock simply fails and the Packet is freed).
  return std::shared_ptr<const Packet>(
      slot.release(), [pool = std::weak_ptr<PacketPool>(packet_pool_)](const Packet* p) {
        Packet* recycled = const_cast<Packet*>(p);
        if (const auto locked = pool.lock(); locked && locked->free.size() < kMaxPooledPackets) {
          recycled->payload.clear();
          locked->free.emplace_back(recycled);
        } else {
          delete recycled;
        }
      });
}

DeviceId Network::add_device(NodeId identity, util::Vec2 position) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{.id = id,
                            .identity = identity,
                            .position = position,
                            .deployed_at = scheduler_.now()});
  receivers_.emplace_back();
  tx_bytes_.push_back(0);
  energy_j_.push_back(energy_.initial_j);
  tx_busy_until_.push_back(Time::zero());
  tx_run_start_.push_back(Time::zero());
  pos_x_.push_back(position.x);
  pos_y_.push_back(position.y);
  identity_index_[identity].push_back(id);
  grid_insert(id, position);
  return id;
}

void Network::grid_insert(DeviceId id, util::Vec2 position) {
  if (!indexable_) return;
  // Ids are assigned sequentially, so appending keeps every cell's vector
  // sorted ascending -- the property candidate enumeration relies on for
  // deterministic device-id order. (set_position re-buckets with a sorted
  // insert, because a moved id is usually not the cell's maximum.)
  grid_[cell_key(cell_coord(position.x, cell_size_), cell_coord(position.y, cell_size_))]
      .push_back(id);
  ++grid_version_;
}

void Network::set_position(DeviceId id, util::Vec2 position) {
  Device& d = devices_.at(id);
  const util::Vec2 old = d.position;
  d.position = position;
  pos_x_[id] = position.x;
  pos_y_[id] = position.y;
  if (!indexable_) return;
  const std::uint64_t old_key =
      cell_key(cell_coord(old.x, cell_size_), cell_coord(old.y, cell_size_));
  const std::uint64_t new_key =
      cell_key(cell_coord(position.x, cell_size_), cell_coord(position.y, cell_size_));
  // A move inside one cell changes no cell membership, and cached candidate
  // lists hold only ids (queries re-check link_exists against live
  // positions), so the caches stay valid -- no version bump needed.
  if (old_key == new_key) return;
  std::vector<DeviceId>& old_cell = grid_[old_key];
  old_cell.erase(std::remove(old_cell.begin(), old_cell.end(), id), old_cell.end());
  std::vector<DeviceId>& new_cell = grid_[new_key];
  new_cell.insert(std::lower_bound(new_cell.begin(), new_cell.end(), id), id);
  ++grid_version_;
}

const std::vector<DeviceId>& Network::candidates_near(util::Vec2 center) const {
  const std::int64_t cx = cell_coord(center.x, cell_size_);
  const std::int64_t cy = cell_coord(center.y, cell_size_);
  BlockCache& cache = block_cache_[cell_key(cx, cy)];
  if (cache.version != grid_version_) {
    cache.version = grid_version_;
    cache.candidates.clear();
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = grid_.find(cell_key(cx + dx, cy + dy));
        if (it != grid_.end()) {
          cache.candidates.insert(cache.candidates.end(), it->second.begin(), it->second.end());
        }
      }
    }
    // Each cell is sorted; merging the 3x3 block by sorting keeps
    // enumeration in ascending device-id order, so per-receiver RNG draws
    // are consumed in exactly the linear scan's order (bit-identical runs
    // either way).
    std::sort(cache.candidates.begin(), cache.candidates.end());
  }
  return cache.candidates;
}

template <typename Fn>
void Network::for_each_candidate(util::Vec2 center, Fn&& fn) const {
  if (use_spatial_index_) {
    for (const DeviceId id : candidates_near(center)) fn(devices_[id]);
  } else {
    for (const Device& d : devices_) fn(d);
  }
}

void Network::drain(DeviceId id, double joules) {
  if (!energy_.enabled) return;
  energy_j_[id] -= joules;
  if (energy_j_[id] <= 0.0) {
    energy_j_[id] = 0.0;
    devices_[id].alive = false;
  }
}

DeviceId Network::add_replica(NodeId identity, util::Vec2 position) {
  const DeviceId id = add_device(identity, position);
  devices_[id].replica = true;
  devices_[id].compromised = true;
  return id;
}

std::vector<DeviceId> Network::devices_with_identity(NodeId identity) const {
  std::vector<DeviceId> out;
  const auto it = identity_index_.find(identity);
  if (it == identity_index_.end()) return out;
  for (const DeviceId id : it->second) {
    if (devices_[id].alive) out.push_back(id);
  }
  return out;
}

void Network::set_receiver(DeviceId id, std::function<void(const Packet&)> handler) {
  receivers_.at(id) = std::move(handler);
}

Time Network::transmission_time(std::size_t wire_bytes) const {
  const double seconds = static_cast<double>(wire_bytes) * 8.0 / config_.bit_rate_bps;
  return Time::seconds(seconds);
}

void Network::note_drop(obs::DropCause cause, NodeId node, NodeId peer, std::uint32_t bytes) {
  metrics_.count_drop(cause);
  // Dense sweeps hit this once per out-of-range candidate; below kEvents the
  // tracer only needs the event tally, not a built payload.
  if (tracer_.recording()) {
    tracer_.emit(obs::Event{.kind = obs::EventKind::kDrop,
                            .code = static_cast<std::uint8_t>(cause),
                            .node = node,
                            .peer = peer,
                            .bytes = bytes,
                            .t_ns = scheduler_.now().ns()});
  } else {
    tracer_.count_radio_event();
  }
}

void Network::note_inject(obs::InjectKind kind, NodeId node, NodeId peer, std::uint32_t bytes) {
  if (tracer_.active()) {
    tracer_.emit(obs::Event{.kind = obs::EventKind::kInject,
                            .code = static_cast<std::uint8_t>(kind),
                            .node = node,
                            .peer = peer,
                            .bytes = bytes,
                            .t_ns = scheduler_.now().ns()});
  }
}

void Network::deliver_copy(DeviceId to, const std::shared_ptr<const Packet>& packet, Time start,
                           Time airtime_end, obs::Phase phase) {
  const Device& d = devices_[to];
  const NodeId sender_identity = devices_[packet->sender_device].identity;
  const auto rx_bytes = static_cast<std::uint32_t>(packet->wire_bytes());
  if (!d.alive || !receivers_[to]) {
    note_drop(obs::DropCause::kReceiverDead, d.identity, sender_identity, rx_bytes);
    return;
  }
  // Half-duplex: the receiver missed the packet iff its own transmit run
  // overlapped our airtime [start, airtime_end). Comparing intervals --
  // not just tx_busy_until_ > start -- means a transmission the receiver
  // queues *after* our airtime ended (but before this delivery event
  // fires) no longer retroactively destroys the packet. Only the latest
  // contiguous run is tracked: an overlapping run that ended and was
  // replaced by a non-overlapping one inside the ~0.5 ms delivery lag
  // would be forgiven, a vanishingly rare and optimistic approximation.
  if (config_.half_duplex && tx_run_start_[to] < airtime_end && tx_busy_until_[to] > start) {
    note_drop(obs::DropCause::kHalfDuplex, d.identity, sender_identity, rx_bytes);
    return;
  }
  drain(to, energy_.rx_j_per_byte * static_cast<double>(packet->wire_bytes()));
  if (!devices_[to].alive) {
    note_drop(obs::DropCause::kReceiverDead, d.identity, sender_identity, rx_bytes);
    return;
  }
  metrics_.count_delivery();
  if (tracer_.recording()) {
    tracer_.emit(obs::Event{.kind = obs::EventKind::kDelivery,
                            .code = static_cast<std::uint8_t>(phase),
                            .node = d.identity,
                            .peer = sender_identity,
                            .bytes = rx_bytes,
                            .t_ns = scheduler_.now().ns()});
  } else {
    tracer_.count_radio_event();
  }
  receivers_[to](*packet);
}

void Network::transmit(DeviceId from, Packet packet, obs::Phase phase) {
  transmit_impl(from, std::move(packet), phase);
}

void Network::transmit_impl(DeviceId from, Packet packet, obs::Phase phase) {
  const Device& sender = devices_.at(from);
  if (!sender.alive) return;
  packet.sender_device = from;

  const auto wire_bytes = static_cast<std::uint32_t>(packet.wire_bytes());
  metrics_.count_tx(phase, wire_bytes);
  if (tracer_.recording()) {
    tracer_.emit(obs::Event{.kind = obs::EventKind::kTx,
                            .code = static_cast<std::uint8_t>(phase),
                            .node = sender.identity,
                            .peer = packet.dst,
                            .bytes = wire_bytes,
                            .t_ns = scheduler_.now().ns()});
  } else {
    tracer_.count_radio_event();
  }
  tx_bytes_[from] += packet.wire_bytes();
  drain(from, energy_.tx_j_per_byte * static_cast<double>(packet.wire_bytes()));
  if (!devices_[from].alive) {  // battery died putting this on the air
    note_drop(obs::DropCause::kSenderDead, sender.identity, kNoNode, wire_bytes);
    return;
  }

  const Time tx_time = transmission_time(packet.wire_bytes());
  // Half-duplex: a device's transmissions queue behind each other. A send
  // that starts at or after the previous one cleared begins a new
  // contiguous run; otherwise it extends the current run.
  Time start = scheduler_.now();
  if (config_.half_duplex) {
    if (tx_busy_until_[from] > start) {
      start = tx_busy_until_[from];
    } else {
      tx_run_start_[from] = start;
    }
    tx_busy_until_[from] = start + tx_time;
  }
  const Time airtime_end = start + tx_time;
  const bool sender_jammed = jammed(sender.position);

  // Resolve the receiver set now (link state, jamming, and loss are
  // evaluated at transmission time). Overhearers share a single scheduled
  // event -- their per-receiver propagation-delay differences are
  // nanoseconds against the ~0.5 ms MAC processing delay, and one event per
  // transmission keeps the event heap small on dense fields. Receivers the
  // packet is *addressed to* get exact per-receiver timing: protocols that
  // measure time of flight (distance bounding) depend on it.
  std::vector<DeviceId> overhearers;
  double max_distance = 0.0;
  const std::shared_ptr<const Packet> shared = share_packet(std::move(packet));

  const NodeId sender_identity = sender.identity;

  // Check order (and therefore the loss-RNG draw sequence) is unchanged from
  // the untraced code path: grid and linear receiver resolution stay
  // bit-identical for deliveries. Only the kOutOfRange count depends on the
  // candidate superset (3x3 block vs whole field). The fault hook is
  // consulted strictly after the channel resolved a copy as deliverable, so
  // an uninstalled hook perturbs nothing -- not even RNG draw order.
  //
  // `link_class` carries the strip filter's verdict for this candidate
  // (kLinkCheck when the strip path is off, which reduces the link decision
  // to the seed's scalar link_exists call).
  const auto handle = [&](const Device& receiver, std::uint8_t link_class) {
    if (receiver.id == from || !receiver.alive) return;
    if (!receivers_[receiver.id]) return;
    metrics_.count_candidate();
    const bool linked =
        link_class == kLinkIn ||
        (link_class == kLinkCheck &&
         propagation_->link_exists(sender.position, receiver.position));
    if (!linked) {
      note_drop(obs::DropCause::kOutOfRange, receiver.identity, sender_identity, wire_bytes);
      return;
    }
    if (sender_jammed || jammed(receiver.position)) {
      note_drop(obs::DropCause::kCollision, receiver.identity, sender_identity, wire_bytes);
      return;
    }
    if (config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability)) {
      note_drop(obs::DropCause::kLoss, receiver.identity, sender_identity, wire_bytes);
      return;
    }

    const double distance = util::distance(sender.position, receiver.position);

    if (fault_ != nullptr) {
      const FaultDecision fd =
          fault_->on_delivery(sender_identity, receiver.identity, phase, scheduler_.now());
      if (fd.drop) {
        note_inject(fd.drop_kind, receiver.identity, sender_identity, wire_bytes);
        note_drop(obs::DropCause::kInjected, receiver.identity, sender_identity, wire_bytes);
        return;
      }
      if (fd.perturbs()) {
        // Perturbed copies always get dedicated per-receiver events with
        // exact per-receiver timing -- an injected duplicate or delayed copy
        // cannot ride the shared overhearer event.
        const Time base = start + tx_time + PropagationModel::propagation_delay(distance) +
                          config_.processing_delay + fd.extra_delay;
        std::shared_ptr<const Packet> pkt = shared;
        if (fd.corrupt) {
          Packet mutated = *shared;
          fault_->corrupt_packet(mutated);
          pkt = share_packet(std::move(mutated));
          note_inject(obs::InjectKind::kCorrupt, receiver.identity, sender_identity, wire_bytes);
        }
        if (fd.extra_delay > Time::zero()) {
          note_inject(obs::InjectKind::kDelay, receiver.identity, sender_identity, wire_bytes);
        }
        const DeviceId to = receiver.id;
        scheduler_.schedule_at(base, [this, to, pkt, start, airtime_end, phase]() {
          deliver_copy(to, pkt, start, airtime_end, phase);
        });
        for (std::uint32_t i = 1; i <= fd.copies; ++i) {
          // Extra copies count as fresh candidates so the conservation law
          // (candidates == deliveries + channel drops) survives duplication.
          metrics_.count_candidate();
          note_inject(obs::InjectKind::kDuplicate, receiver.identity, sender_identity, wire_bytes);
          scheduler_.schedule_at(
              base + Time::nanoseconds(fd.copy_spacing.ns() * static_cast<std::int64_t>(i)),
                                 [this, to, pkt, start, airtime_end, phase]() {
                                   deliver_copy(to, pkt, start, airtime_end, phase);
                                 });
        }
        return;
      }
    }

    if (!shared->is_broadcast() && receiver.identity == shared->dst) {
      const Time at = start + tx_time + PropagationModel::propagation_delay(distance) +
                      config_.processing_delay;
      const DeviceId to = receiver.id;
      scheduler_.schedule_at(at, [this, to, shared, start, airtime_end, phase]() {
        deliver_copy(to, shared, start, airtime_end, phase);
      });
    } else {
      overhearers.push_back(receiver.id);
      max_distance = std::max(max_distance, distance);
    }
  };

  // A strip shorter than one vector pass is not worth gathering.
  constexpr std::size_t kStripMin = 4;
  if (use_spatial_index_) {
    const std::vector<DeviceId>& cands = candidates_near(sender.position);
    const bool strip = strip_filter_ && cands.size() >= kStripMin;
    if (strip) {
      strip_x_.resize(cands.size());
      strip_y_.resize(cands.size());
      strip_class_.resize(cands.size());
      for (std::size_t i = 0; i < cands.size(); ++i) {
        strip_x_[i] = pos_x_[cands[i]];
        strip_y_[i] = pos_y_[cands[i]];
      }
      propagation_->classify_links(sender.position, strip_x_.data(), strip_y_.data(),
                                   cands.size(), strip_class_.data());
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      handle(devices_[cands[i]], strip ? strip_class_[i] : kLinkCheck);
    }
  } else {
    // Linear path: the SoA position mirrors *are* the strip.
    const std::size_t n = devices_.size();
    const bool strip = strip_filter_ && n >= kStripMin;
    if (strip) {
      strip_class_.resize(n);
      propagation_->classify_links(sender.position, pos_x_.data(), pos_y_.data(), n,
                                   strip_class_.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      handle(devices_[i], strip ? strip_class_[i] : kLinkCheck);
    }
  }
  if (overhearers.empty()) return;

  const Time deliver_at = start + tx_time + PropagationModel::propagation_delay(max_distance) +
                          config_.processing_delay;
  scheduler_.schedule_at(deliver_at, [this, shared, start, airtime_end, phase,
                                      overhearers = std::move(overhearers)]() {
    for (DeviceId to : overhearers) deliver_copy(to, shared, start, airtime_end, phase);
  });
}

obs::TraceSummary Network::trace_summary() const {
  obs::TraceSummary summary;
  summary.trials = 1;
  metrics_.accumulate_into(summary);
  tracer_.accumulate_into(summary);
  return summary;
}

bool Network::link(DeviceId a, DeviceId b) const {
  if (a == b) return false;
  const Device& da = devices_.at(a);
  const Device& db = devices_.at(b);
  if (!da.alive || !db.alive) return false;
  return propagation_->link_exists(da.position, db.position);
}

std::vector<DeviceId> Network::devices_in_range(DeviceId id) const {
  std::vector<DeviceId> out;
  for_each_candidate(devices_.at(id).position, [&](const Device& d) {
    if (d.id != id && d.alive && link(id, d.id)) out.push_back(d.id);
  });
  return out;
}

std::uint64_t Network::max_tx_bytes() const {
  std::uint64_t max_bytes = 0;
  for (std::uint64_t b : tx_bytes_) max_bytes = std::max(max_bytes, b);
  return max_bytes;
}

std::size_t Network::add_jammer(util::Circle area) {
  jammers_.push_back(area);
  return jammers_.size() - 1;
}

void Network::remove_jammer(std::size_t handle) { jammers_.at(handle).reset(); }

bool Network::jammed(util::Vec2 position) const {
  for (const auto& jammer : jammers_) {
    if (jammer && jammer->contains(position)) return true;
  }
  return false;
}

}  // namespace snd::sim
