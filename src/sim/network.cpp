#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace snd::sim {

Network::Network(std::unique_ptr<PropagationModel> propagation, ChannelConfig config,
                 std::uint64_t seed, EnergyConfig energy)
    : propagation_(std::move(propagation)), config_(config), energy_(energy), rng_(seed) {
  assert(propagation_ != nullptr);
}

DeviceId Network::add_device(NodeId identity, util::Vec2 position) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{.id = id,
                            .identity = identity,
                            .position = position,
                            .deployed_at = scheduler_.now()});
  receivers_.emplace_back();
  tx_bytes_.push_back(0);
  energy_j_.push_back(energy_.initial_j);
  tx_busy_until_.push_back(Time::zero());
  return id;
}

void Network::drain(DeviceId id, double joules) {
  if (!energy_.enabled) return;
  energy_j_[id] -= joules;
  if (energy_j_[id] <= 0.0) {
    energy_j_[id] = 0.0;
    devices_[id].alive = false;
  }
}

DeviceId Network::add_replica(NodeId identity, util::Vec2 position) {
  const DeviceId id = add_device(identity, position);
  devices_[id].replica = true;
  devices_[id].compromised = true;
  return id;
}

std::vector<DeviceId> Network::devices_with_identity(NodeId identity) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_) {
    if (d.alive && d.identity == identity) out.push_back(d.id);
  }
  return out;
}

void Network::set_receiver(DeviceId id, std::function<void(const Packet&)> handler) {
  receivers_.at(id) = std::move(handler);
}

Time Network::transmission_time(std::size_t wire_bytes) const {
  const double seconds = static_cast<double>(wire_bytes) * 8.0 / config_.bit_rate_bps;
  return Time::seconds(seconds);
}

void Network::transmit(DeviceId from, Packet packet, std::string_view category) {
  const Device& sender = devices_.at(from);
  if (!sender.alive) return;
  packet.sender_device = from;

  metrics_.count_tx(category, packet.wire_bytes());
  tx_bytes_[from] += packet.wire_bytes();
  drain(from, energy_.tx_j_per_byte * static_cast<double>(packet.wire_bytes()));
  if (!devices_[from].alive) return;  // battery died putting this on the air

  const Time tx_time = transmission_time(packet.wire_bytes());
  // Half-duplex: a device's transmissions queue behind each other.
  Time start = scheduler_.now();
  if (config_.half_duplex) {
    start = std::max(start, tx_busy_until_[from]);
    tx_busy_until_[from] = start + tx_time;
  }
  const bool sender_jammed = jammed(sender.position);

  // Resolve the receiver set now (link state, jamming, and loss are
  // evaluated at transmission time). Overhearers share a single scheduled
  // event -- their per-receiver propagation-delay differences are
  // nanoseconds against the ~0.5 ms MAC processing delay, and one event per
  // transmission keeps the event heap small on dense fields. Receivers the
  // packet is *addressed to* get exact per-receiver timing: protocols that
  // measure time of flight (distance bounding) depend on it.
  std::vector<DeviceId> overhearers;
  double max_distance = 0.0;
  const auto shared = std::make_shared<const Packet>(std::move(packet));

  auto deliver = [this, start, shared](DeviceId to) {
    const Device& d = devices_[to];
    if (!d.alive || !receivers_[to]) return;
    // Half-duplex: a receiver that was transmitting during our airtime
    // missed the packet.
    if (config_.half_duplex && tx_busy_until_[to] > start) return;
    drain(to, energy_.rx_j_per_byte * static_cast<double>(shared->wire_bytes()));
    if (!devices_[to].alive) return;
    metrics_.count_delivery();
    receivers_[to](*shared);
  };

  for (const Device& receiver : devices_) {
    if (receiver.id == from || !receiver.alive) continue;
    if (!receivers_[receiver.id]) continue;
    if (!propagation_->link_exists(sender.position, receiver.position)) continue;
    if (sender_jammed || jammed(receiver.position)) continue;
    if (config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability)) continue;

    const double distance = util::distance(sender.position, receiver.position);
    if (!shared->is_broadcast() && receiver.identity == shared->dst) {
      const Time at = start + tx_time + PropagationModel::propagation_delay(distance) +
                      config_.processing_delay;
      const DeviceId to = receiver.id;
      scheduler_.schedule_at(at, [deliver, to]() { deliver(to); });
    } else {
      overhearers.push_back(receiver.id);
      max_distance = std::max(max_distance, distance);
    }
  }
  if (overhearers.empty()) return;

  const Time deliver_at = start + tx_time + PropagationModel::propagation_delay(max_distance) +
                          config_.processing_delay;
  scheduler_.schedule_at(deliver_at,
                         [deliver, overhearers = std::move(overhearers)]() {
                           for (DeviceId to : overhearers) deliver(to);
                         });
}

bool Network::link(DeviceId a, DeviceId b) const {
  if (a == b) return false;
  const Device& da = devices_.at(a);
  const Device& db = devices_.at(b);
  if (!da.alive || !db.alive) return false;
  return propagation_->link_exists(da.position, db.position);
}

std::vector<DeviceId> Network::devices_in_range(DeviceId id) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_) {
    if (d.id != id && d.alive && link(id, d.id)) out.push_back(d.id);
  }
  return out;
}

std::uint64_t Network::max_tx_bytes() const {
  std::uint64_t max_bytes = 0;
  for (std::uint64_t b : tx_bytes_) max_bytes = std::max(max_bytes, b);
  return max_bytes;
}

std::size_t Network::add_jammer(util::Circle area) {
  jammers_.push_back(area);
  return jammers_.size() - 1;
}

void Network::remove_jammer(std::size_t handle) { jammers_.at(handle).reset(); }

bool Network::jammed(util::Vec2 position) const {
  for (const auto& jammer : jammers_) {
    if (jammer && jammer->contains(position)) return true;
  }
  return false;
}

}  // namespace snd::sim
