// The radio-layer frame exchanged between physical devices.
//
// The library distinguishes *devices* (physical radios, unique DeviceId)
// from *identities* (NodeId, what protocols see). Replication attacks make
// several devices claim one identity, so the claimed source identity in a
// packet is data, not truth: `sender_device` records which physical radio
// actually transmitted (used only by the channel and by ground-truth
// auditing, never by protocol logic).
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/ids.h"

namespace snd::sim {

using DeviceId = std::uint32_t;
inline constexpr DeviceId kNoDevice = 0xffffffffu;

struct Packet {
  DeviceId sender_device = kNoDevice;
  /// Claimed source identity (unauthenticated at this layer).
  NodeId src = kNoNode;
  /// Destination identity; kNoNode means local broadcast.
  NodeId dst = kNoNode;
  /// Protocol discriminator (each module defines its own message types).
  std::uint8_t type = 0;
  util::Bytes payload;

  /// 802.15.4-style MAC/PHY framing overhead per transmission.
  static constexpr std::size_t kHeaderBytes = 11;

  [[nodiscard]] std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
  [[nodiscard]] bool is_broadcast() const { return dst == kNoNode; }
};

}  // namespace snd::sim
