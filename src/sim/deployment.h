// Deployment position generators for the simulated field. The paper's
// evaluation deploys uniformly at random (§4.5.1); grid and Gaussian-cluster
// layouts are provided for robustness experiments.
#pragma once

#include <vector>

#include "util/geometry.h"
#include "util/rng.h"

namespace snd::sim {

/// n positions i.i.d. uniform over the rectangle.
std::vector<util::Vec2> deploy_uniform(std::size_t n, const util::Rect& field, util::Rng& rng);

/// nx-by-ny grid with optional per-point uniform jitter (fraction of cell).
std::vector<util::Vec2> deploy_grid(std::size_t nx, std::size_t ny, const util::Rect& field,
                                    double jitter_fraction, util::Rng& rng);

/// Positions clustered around `cluster_count` uniformly placed centers with
/// Gaussian spread, clamped to the field.
std::vector<util::Vec2> deploy_clustered(std::size_t n, std::size_t cluster_count, double spread,
                                         const util::Rect& field, util::Rng& rng);

}  // namespace snd::sim
