// Radio propagation models. A model answers one question -- does a link
// exist between two positions -- plus the propagation delay. Link decisions
// are pure functions of the endpoint positions (log-normal shadowing hashes
// the endpoints into a stable per-link fade), so the same pair always gets
// the same answer within a run: links are symmetric and stable, matching the
// paper's static-network assumption.
#pragma once

#include <memory>

#include "sim/time.h"
#include "util/geometry.h"

namespace snd::sim {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual bool link_exists(util::Vec2 a, util::Vec2 b) const = 0;

  /// The nominal maximum radio range R used by analytical formulas and the
  /// safety definitions (for shadowing models, the threshold-crossing
  /// distance at zero fade).
  [[nodiscard]] virtual double nominal_range() const = 0;

  /// Hard reach bound: link_exists is guaranteed false for any pair of
  /// positions further apart than this. Spatial indexing relies on the
  /// bound being finite, so every model must truncate whatever randomness
  /// it carries (see LogNormalModel for the truncated-fade semantics).
  [[nodiscard]] virtual double max_range() const = 0;

  /// Signal propagation delay over `distance` meters (speed of light,
  /// rounded -- not truncated -- to the nanosecond tick).
  [[nodiscard]] static Time propagation_delay(double distance);
};

/// Classic unit-disk model: link iff distance <= range.
class UnitDiskModel final : public PropagationModel {
 public:
  explicit UnitDiskModel(double range) : range_(range) {}
  [[nodiscard]] bool link_exists(util::Vec2 a, util::Vec2 b) const override;
  [[nodiscard]] double nominal_range() const override { return range_; }
  [[nodiscard]] double max_range() const override { return range_; }

 private:
  double range_;
};

/// Log-normal shadowing: the link margin at distance d is
///   M(d) = 10 * n * log10(R / d) + X,  X ~ N(0, sigma) per link,
/// and the link exists iff M >= 0. X is derived deterministically from the
/// endpoint positions and a seed, so the radio graph is stable but
/// irregular (non-disk), which exercises the protocol beyond the paper's
/// unit-disk evaluation.
///
/// Truncated-fade semantics: an untruncated normal fade gives the model
/// unbounded reach (any distance is linkable under a lucky enough draw),
/// which no spatial index can serve. Fades beyond +kFadeCapSigmas standard
/// deviations are therefore defined not to occur: link_exists is false past
/// max_range() = R * 10^(kFadeCapSigmas * sigma / (10 * n)), the distance at
/// which even a capped fade cannot lift the margin to zero. This discards
/// links of probability < 4e-5 each, all beyond several nominal ranges.
class LogNormalModel final : public PropagationModel {
 public:
  /// Largest fade considered physical, in standard deviations.
  static constexpr double kFadeCapSigmas = 4.0;

  LogNormalModel(double range, double path_loss_exponent, double sigma_db,
                 std::uint64_t seed);
  [[nodiscard]] bool link_exists(util::Vec2 a, util::Vec2 b) const override;
  [[nodiscard]] double nominal_range() const override { return range_; }
  [[nodiscard]] double max_range() const override { return max_range_; }

 private:
  [[nodiscard]] double link_fade_db(util::Vec2 a, util::Vec2 b) const;

  double range_;
  double exponent_;
  double sigma_db_;
  double max_range_;
  std::uint64_t seed_;
};

}  // namespace snd::sim
