// Radio propagation models. A model answers one question -- does a link
// exist between two positions -- plus the propagation delay. Link decisions
// are pure functions of the endpoint positions (log-normal shadowing hashes
// the endpoints into a stable per-link fade), so the same pair always gets
// the same answer within a run: links are symmetric and stable, matching the
// paper's static-network assumption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/time.h"
#include "util/geometry.h"

namespace snd::sim {

/// classify_links() verdicts. kLinkIn / kLinkOut are *definite*: they must
/// imply link_exists() true / false for the same pair. kLinkCheck defers to
/// a scalar link_exists() call, so a model that cannot decide a candidate
/// cheaply (or at all) stays exactly as accurate as the scalar path.
inline constexpr std::uint8_t kLinkOut = 0;
inline constexpr std::uint8_t kLinkIn = 1;
inline constexpr std::uint8_t kLinkCheck = 2;

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual bool link_exists(util::Vec2 a, util::Vec2 b) const = 0;

  /// True if classify_links() can decide some candidates without a scalar
  /// link_exists() call; the Network only gathers position strips when so.
  [[nodiscard]] virtual bool supports_link_classes() const { return false; }

  /// Vectorized candidate filter: classifies the n candidates at
  /// (xs[i], ys[i]) against a transmission from `from`, writing one of
  /// kLinkIn / kLinkOut / kLinkCheck per candidate to `out`. Distance² is
  /// computed width-4 (AVX) / width-2 (SSE2) in doubles and compared
  /// against a guard-banded threshold: candidates inside the band are
  /// kLinkCheck, so a definite verdict never disagrees with link_exists()
  /// even at rounding boundaries -- the strip path stays bit-identical to
  /// the scalar filter by construction. The base implementation marks
  /// everything kLinkCheck.
  virtual void classify_links(util::Vec2 from, const double* xs, const double* ys,
                              std::size_t n, std::uint8_t* out) const;

  /// The nominal maximum radio range R used by analytical formulas and the
  /// safety definitions (for shadowing models, the threshold-crossing
  /// distance at zero fade).
  [[nodiscard]] virtual double nominal_range() const = 0;

  /// Hard reach bound: link_exists is guaranteed false for any pair of
  /// positions further apart than this. Spatial indexing relies on the
  /// bound being finite, so every model must truncate whatever randomness
  /// it carries (see LogNormalModel for the truncated-fade semantics).
  [[nodiscard]] virtual double max_range() const = 0;

  /// Signal propagation delay over `distance` meters (speed of light,
  /// rounded -- not truncated -- to the nanosecond tick).
  [[nodiscard]] static Time propagation_delay(double distance);
};

/// Classic unit-disk model: link iff distance <= range.
class UnitDiskModel final : public PropagationModel {
 public:
  explicit UnitDiskModel(double range) : range_(range) {}
  [[nodiscard]] bool link_exists(util::Vec2 a, util::Vec2 b) const override;
  [[nodiscard]] double nominal_range() const override { return range_; }
  [[nodiscard]] double max_range() const override { return range_; }

  /// d² <= range² is decidable straight from the strip: definite In below
  /// the banded threshold, definite Out above it, Check inside the band.
  [[nodiscard]] bool supports_link_classes() const override { return true; }
  void classify_links(util::Vec2 from, const double* xs, const double* ys, std::size_t n,
                      std::uint8_t* out) const override;

 private:
  double range_;
};

/// Log-normal shadowing: the link margin at distance d is
///   M(d) = 10 * n * log10(R / d) + X,  X ~ N(0, sigma) per link,
/// and the link exists iff M >= 0. X is derived deterministically from the
/// endpoint positions and a seed, so the radio graph is stable but
/// irregular (non-disk), which exercises the protocol beyond the paper's
/// unit-disk evaluation.
///
/// Truncated-fade semantics: an untruncated normal fade gives the model
/// unbounded reach (any distance is linkable under a lucky enough draw),
/// which no spatial index can serve. Fades beyond +kFadeCapSigmas standard
/// deviations are therefore defined not to occur: link_exists is false past
/// max_range() = R * 10^(kFadeCapSigmas * sigma / (10 * n)), the distance at
/// which even a capped fade cannot lift the margin to zero. This discards
/// links of probability < 4e-5 each, all beyond several nominal ranges.
class LogNormalModel final : public PropagationModel {
 public:
  /// Largest fade considered physical, in standard deviations.
  static constexpr double kFadeCapSigmas = 4.0;

  LogNormalModel(double range, double path_loss_exponent, double sigma_db,
                 std::uint64_t seed);
  [[nodiscard]] bool link_exists(util::Vec2 a, util::Vec2 b) const override;
  [[nodiscard]] double nominal_range() const override { return range_; }
  [[nodiscard]] double max_range() const override { return max_range_; }

  /// Only the truncated-fade cutoff is strip-decidable: candidates beyond
  /// max_range() are definite Out (sparing them the sqrt + per-link fade
  /// hash), everything nearer is Check -- the fade draw is unbounded below,
  /// so no distance guarantees a link.
  [[nodiscard]] bool supports_link_classes() const override { return true; }
  void classify_links(util::Vec2 from, const double* xs, const double* ys, std::size_t n,
                      std::uint8_t* out) const override;

 private:
  [[nodiscard]] double link_fade_db(util::Vec2 a, util::Vec2 b) const;

  double range_;
  double exponent_;
  double sigma_db_;
  double max_range_;
  std::uint64_t seed_;
};

}  // namespace snd::sim
