// The simulator's seam for deterministic fault injection.
//
// sim::Network consults an optional FaultHook once per enumerated delivery
// candidate that survived the physical channel (range, jamming, loss). The
// hook decides whether that one copy is destroyed, duplicated, delayed, or
// corrupted in flight; fault::Injector is the production implementation,
// driven by a seeded, serializable FaultPlan.
//
// Determinism contract: with no hook installed the Network's code path --
// including every RNG draw -- is unchanged from the seed implementation, so
// runs are byte-identical to a build without the fault layer. With a hook
// installed, the hook is consulted in the same deterministic candidate
// order the channel resolves receivers in, so a (seed, plan) pair always
// reproduces the same perturbed run.
#pragma once

#include <cstdint>

#include "obs/event.h"
#include "sim/packet.h"
#include "sim/time.h"
#include "util/ids.h"

namespace snd::sim {

/// What the hook wants done with one delivery candidate. Defaults leave the
/// delivery untouched.
struct FaultDecision {
  /// Destroy this copy (counted as obs::DropCause::kInjected and traced
  /// with `drop_kind`, which distinguishes targeted drops from bursts).
  bool drop = false;
  obs::InjectKind drop_kind = obs::InjectKind::kDrop;

  /// Extra copies delivered after the original (replay/duplication faults);
  /// copy i arrives `copy_spacing` * i after the original.
  std::uint32_t copies = 0;
  Time copy_spacing;

  /// Additional latency on the original delivery.
  Time extra_delay;

  /// Mutate the payload in flight (the hook's corrupt_packet is applied to
  /// a private copy; other receivers of the broadcast are unaffected).
  bool corrupt = false;

  /// True when the decision changes anything about the delivery.
  [[nodiscard]] bool perturbs() const {
    return drop || copies > 0 || corrupt || extra_delay > Time::zero();
  }
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// One decision per delivery candidate. `src` is the *actual* identity of
  /// the transmitting device (ground truth, not the packet's claimed src),
  /// `dst` the candidate receiver's identity.
  virtual FaultDecision on_delivery(NodeId src, NodeId dst, obs::Phase phase, Time now) = 0;

  /// Mutates `packet` for a corrupt decision (bit flips, truncation, ...).
  virtual void corrupt_packet(Packet& packet) = 0;

  /// Per-node local-oscillator drift: protocol layers multiply their
  /// relative timer delays for `node` by this factor (1.0 = no skew).
  [[nodiscard]] virtual double timer_drift(NodeId node) const = 0;
  /// False when no node is skewed; lets the protocol skip the lookup.
  [[nodiscard]] virtual bool skews_timers() const = 0;
};

}  // namespace snd::sim
