// Per-network counters for the overhead experiments (§4.3, §4.5.3): every
// transmission is charged to a named category so benches can report
// messages/bytes per protocol phase.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace snd::sim {

class Metrics {
 public:
  struct Counter {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  void count_tx(std::string_view category, std::size_t bytes);
  void count_delivery() { ++deliveries_; }

  [[nodiscard]] Counter total() const;
  [[nodiscard]] Counter category(std::string_view name) const;
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& by_category() const {
    return categories_;
  }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

  void reset();

 private:
  std::map<std::string, Counter, std::less<>> categories_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace snd::sim
