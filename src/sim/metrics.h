// Per-network counters for the overhead experiments (§4.3, §4.5.3): every
// transmission is charged to a protocol phase so benches can report
// messages/bytes per phase, and every undelivered packet is charged to a
// typed obs::DropCause. The hot path is a fixed array indexed by obs::Phase;
// strings appear only at export time (by_category()).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/event.h"
#include "obs/summary.h"

namespace snd::sim {

class Metrics {
 public:
  using Counter = obs::TxCounter;

  void count_tx(obs::Phase phase, std::size_t bytes) {
    auto& counter = phases_[static_cast<std::size_t>(phase)];
    ++counter.messages;
    counter.bytes += bytes;
  }

  void count_delivery() { ++deliveries_; }
  void count_drop(obs::DropCause cause) { ++drops_[static_cast<std::size_t>(cause)]; }

  /// One per delivery candidate that reached the channel (in range check and
  /// beyond) plus one per injected extra copy. Feeds the proptest
  /// conservation oracle: candidates == deliveries + channel drops. Not
  /// serialized into reports -- purely an internal invariant anchor.
  void count_candidate() { ++candidates_; }

  [[nodiscard]] Counter total() const;
  [[nodiscard]] Counter phase(obs::Phase phase) const {
    return phases_[static_cast<std::size_t>(phase)];
  }
  /// Export-time view: phase names with non-zero traffic. Built on demand
  /// -- not for hot paths.
  [[nodiscard]] std::map<std::string, Counter, std::less<>> by_category() const;

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t candidates() const { return candidates_; }
  [[nodiscard]] std::uint64_t drops(obs::DropCause cause) const {
    return drops_[static_cast<std::size_t>(cause)];
  }
  [[nodiscard]] std::uint64_t total_drops() const;

  /// Adds this network's radio accounting (tx per phase, deliveries, drops
  /// per cause) to `summary`.
  void accumulate_into(obs::TraceSummary& summary) const;

  void reset();

 private:
  std::array<Counter, obs::kPhaseCount> phases_{};
  std::array<std::uint64_t, obs::kDropCauseCount> drops_{};
  std::uint64_t deliveries_ = 0;
  std::uint64_t candidates_ = 0;
};

}  // namespace snd::sim
