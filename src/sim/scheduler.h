// The discrete-event core: a pending-event queue ordered by (time, insertion
// sequence). The sequence tiebreak makes same-timestamp events fire in
// scheduling order, which keeps every run deterministic.
//
// Implemented as an explicit binary heap with actions stored inline:
// simulations push tens of millions of delivery events, so the hot path
// avoids any per-event node allocation or hash-map traffic. Actions are
// small-buffer-optimized (util::InplaceFunction) for the same reason --
// std::function would heap-allocate every delivery closure. Cancellation is
// the rare case and uses a side set consulted lazily on pop.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "util/bitset.h"
#include "util/inplace_function.h"

namespace snd::sim {

using EventId = std::uint64_t;

/// Scheduled-event callable. The inline capacity covers the largest closure
/// the simulator queues on its hot path (Network's overheard-delivery
/// lambda); anything bigger transparently falls back to one heap allocation.
using EventAction = util::InplaceFunction<void(), 88>;

class Scheduler {
 public:
  Scheduler();

  /// Schedules `action` at absolute time `at`. Events in the past of the
  /// current clock are clamped to "now" (fire next).
  EventId schedule_at(Time at, EventAction action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// Stale ids (cancel-after-fire) are swept out whenever they could
  /// otherwise accumulate, so the side set stays O(pending events) even in
  /// long-running simulations that cancel freely.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending() == 0; }
  [[nodiscard]] Time now() const { return now_; }
  /// Live (non-cancelled) events still waiting to fire. The cancel set may
  /// briefly contain ids of events that already fired (cancel-after-fire is
  /// a no-op, swept lazily), so the subtraction saturates; when the set
  /// provably holds stale ids (it outnumbers the heap) it is swept first,
  /// keeping this count exact in the face of heavy cancel-after-fire.
  /// uint64_t (not size_t) so the count cannot wrap on 32-bit hosts in
  /// simulations pushing past 2^32 events.
  [[nodiscard]] std::uint64_t pending() const;
  /// Size of the lazy-cancellation side set; bounded by
  /// pending() + kCancelSweepSlack however many cancel-after-fire calls a
  /// long-running simulation makes (exposed so tests can pin the bound).
  [[nodiscard]] std::uint64_t cancelled_backlog() const {
    return soa_ ? cancelled_count_ : static_cast<std::uint64_t>(cancelled_.size());
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Test hook: fast-forwards the event-id counter (e.g. to just below
  /// 2^32) so overflow behavior at >= 10^8 events is testable without
  /// scheduling billions of real events. Only moves forward, and requires
  /// an empty queue so the cancel-window invariants stay trivially true.
  void set_next_event_id(EventId id);

  /// Executes the next event, advancing the clock. Returns false when the
  /// queue is empty.
  bool step();

  /// Runs events until the queue empties or the clock would pass `deadline`
  /// (events at exactly `deadline` run). Returns the final clock value.
  Time run_until(Time deadline);

  /// Runs to quiescence.
  void run() { run_until(Time::infinity()); }

 private:
  struct Entry {
    Time at;
    EventId id;
    EventAction action;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  }

  /// Stale-cancellation tolerance: a sweep triggers once cancelled_ exceeds
  /// the heap size by this much (amortizes the O(heap) sweep cost).
  static constexpr std::size_t kCancelSweepSlack = 64;

  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  /// Drops cancelled ids whose events are no longer in the heap (i.e.
  /// already fired); afterwards the backlog <= heap_.size(). Const because
  /// it only compacts bookkeeping -- observable state is unchanged.
  void sweep_cancelled() const;
  /// Removes cancelled entries sitting at the heap root.
  void drop_cancelled_head();
  /// Pops the top entry, skipping cancelled ones. Returns false if empty.
  bool pop_next(Entry& out);
  /// Next live entry's time without popping; false if empty.
  bool peek(Time& at);

  /// Membership/removal against whichever cancel representation is active.
  [[nodiscard]] bool cancelled_contains(EventId id) const;
  void cancelled_erase(EventId id);

  Time now_ = Time::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  /// Cancel-set representation, captured at construction (util::soa_enabled()).
  /// Cancellation semantics are identical either way, so runs stay
  /// bit-identical across the switch.
  const bool soa_;
  /// Seed representation: hash set of cancelled ids.
  mutable std::unordered_set<EventId> cancelled_;
  /// SoA representation: one bit per event id in the window
  /// [bits_base_, next_id_). bits_base_ never exceeds the oldest pending
  /// id, so any id below it provably fired already and its cancel is a
  /// no-op. The window is grown lazily on cancel and rebased (shrunk to the
  /// live range) by sweep_cancelled().
  mutable util::BitSet cancelled_bits_;
  mutable EventId bits_base_ = 1;
  mutable std::uint64_t cancelled_count_ = 0;
};

}  // namespace snd::sim
