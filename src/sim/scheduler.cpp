#include "sim/scheduler.h"

#include <cstdio>
#include <utility>

namespace snd::sim {

EventId Scheduler::schedule_at(Time at, EventAction action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at < now_ ? now_ : at, id, std::move(action)});
  sift_up(heap_.size() - 1);
  return id;
}

void Scheduler::cancel(EventId id) {
  // Only remember cancellations that can still matter.
  if (id >= next_id_) return;
  cancelled_.insert(id);
  // Ids of already-fired events are indistinguishable from pending ones
  // here, but once the set clearly outnumbers the heap the excess must be
  // stale -- sweep it so cancel-after-fire can't grow the set unboundedly.
  if (cancelled_.size() > heap_.size() + kCancelSweepSlack) sweep_cancelled();
}

void Scheduler::sweep_cancelled() const {
  std::unordered_set<EventId> live;
  live.reserve(cancelled_.size());
  for (const Entry& entry : heap_) {
    if (cancelled_.contains(entry.id)) live.insert(entry.id);
  }
  cancelled_ = std::move(live);
}

void Scheduler::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!earlier(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void Scheduler::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = index;
    const std::size_t left = 2 * index + 1;
    const std::size_t right = 2 * index + 2;
    if (left < n && earlier(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && earlier(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == index) return;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

void Scheduler::drop_cancelled_head() {
  if (heap_.empty()) {
    // Nothing can be pending: any recorded cancellations are stale
    // (cancel-after-fire) and can be forgotten.
    cancelled_.clear();
    return;
  }
  while (!heap_.empty() && !cancelled_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    if (heap_.size() > 1) heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

bool Scheduler::pop_next(Entry& out) {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  out = std::move(heap_.front());
  if (heap_.size() > 1) heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return true;
}

bool Scheduler::peek(Time& at) {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  at = heap_.front().at;
  return true;
}

bool Scheduler::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  now_ = entry.at;
  entry.action();
  ++executed_;
  return true;
}

Time Scheduler::run_until(Time deadline) {
  Time next;
  while (peek(next)) {
    if (next > deadline) return now_;
    step();
  }
  return now_;
}

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

}  // namespace snd::sim
