#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "util/soa.h"

namespace snd::sim {

Scheduler::Scheduler() : soa_(util::soa_enabled()) {}

EventId Scheduler::schedule_at(Time at, EventAction action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at < now_ ? now_ : at, id, std::move(action)});
  sift_up(heap_.size() - 1);
  return id;
}

void Scheduler::cancel(EventId id) {
  // Only remember cancellations that can still matter.
  if (id >= next_id_) return;
  if (soa_) {
    if (id < bits_base_) return;  // below the window: provably already fired
    const std::size_t index = static_cast<std::size_t>(id - bits_base_);
    if (index >= cancelled_bits_.capacity()) {
      // Geometric growth keeps repeated worst-case cancels amortized O(1).
      cancelled_bits_.resize(std::max(index + 1, cancelled_bits_.capacity() * 2));
    }
    if (!cancelled_bits_.test(index)) {
      cancelled_bits_.set(index);
      ++cancelled_count_;
    }
  } else {
    cancelled_.insert(id);
  }
  // Ids of already-fired events are indistinguishable from pending ones
  // here, but once the set clearly outnumbers the heap the excess must be
  // stale -- sweep it so cancel-after-fire can't grow the set unboundedly.
  if (cancelled_backlog() > heap_.size() + kCancelSweepSlack) sweep_cancelled();
}

bool Scheduler::cancelled_contains(EventId id) const {
  if (soa_) {
    if (id < bits_base_) return false;
    const std::size_t index = static_cast<std::size_t>(id - bits_base_);
    return index < cancelled_bits_.capacity() && cancelled_bits_.test(index);
  }
  return cancelled_.contains(id);
}

void Scheduler::cancelled_erase(EventId id) {
  // Callers check cancelled_contains first, so the bit/entry exists.
  if (soa_) {
    cancelled_bits_.reset(static_cast<std::size_t>(id - bits_base_));
    --cancelled_count_;
  } else {
    cancelled_.erase(id);
  }
}

void Scheduler::sweep_cancelled() const {
  if (soa_) {
    // Rebase the window on the oldest pending id: every bit below it is a
    // stale cancel-after-fire record, and rebuilding from the heap keeps
    // only cancels that can still suppress an event.
    EventId base = next_id_;
    for (const Entry& entry : heap_) base = std::min(base, entry.id);
    util::BitSet live;
    std::uint64_t count = 0;
    for (const Entry& entry : heap_) {
      if (!cancelled_contains(entry.id)) continue;
      const std::size_t index = static_cast<std::size_t>(entry.id - base);
      if (index >= live.capacity()) live.resize(index + 1);
      live.set(index);
      ++count;
    }
    cancelled_bits_ = std::move(live);
    bits_base_ = base;
    cancelled_count_ = count;
    return;
  }
  std::unordered_set<EventId> live;
  live.reserve(cancelled_.size());
  for (const Entry& entry : heap_) {
    if (cancelled_.contains(entry.id)) live.insert(entry.id);
  }
  cancelled_ = std::move(live);
}

std::uint64_t Scheduler::pending() const {
  if (cancelled_backlog() > heap_.size()) sweep_cancelled();
  const std::uint64_t backlog = cancelled_backlog();
  const auto size = static_cast<std::uint64_t>(heap_.size());
  return size > backlog ? size - backlog : 0;
}

void Scheduler::set_next_event_id(EventId id) {
  assert(heap_.empty() && "set_next_event_id requires an empty queue");
  next_id_ = std::max(next_id_, id);
  if (soa_) {
    cancelled_bits_.resize(0);
    bits_base_ = next_id_;
    cancelled_count_ = 0;
  } else {
    cancelled_.clear();
  }
}

// Both sifts percolate a hole instead of swapping: an Entry is ~112 bytes
// with a small-buffer action whose move runs through a trampoline, so a swap
// costs three such moves per level where the hole costs one. The element
// comparisons -- and therefore the final array -- are exactly those of the
// textbook swap formulation.

void Scheduler::sift_up(std::size_t index) {
  if (index == 0) return;
  std::size_t parent = (index - 1) / 2;
  if (!earlier(heap_[index], heap_[parent])) return;
  Entry moving = std::move(heap_[index]);
  do {
    heap_[index] = std::move(heap_[parent]);
    index = parent;
    parent = (index - 1) / 2;
  } while (index > 0 && earlier(moving, heap_[parent]));
  heap_[index] = std::move(moving);
}

void Scheduler::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  // Smallest of {value-at-i, left child, right child}, where the sinking
  // element is passed explicitly because its slot currently holds the hole.
  const auto smaller_child = [&](std::size_t i, const Entry& value) {
    std::size_t best = i;
    const Entry* best_entry = &value;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && earlier(heap_[left], *best_entry)) {
      best = left;
      best_entry = &heap_[left];
    }
    if (right < n && earlier(heap_[right], *best_entry)) best = right;
    return best;
  };
  std::size_t next = smaller_child(index, heap_[index]);
  if (next == index) return;
  Entry moving = std::move(heap_[index]);
  do {
    heap_[index] = std::move(heap_[next]);
    index = next;
    next = smaller_child(index, moving);
  } while (next != index);
  heap_[index] = std::move(moving);
}

void Scheduler::drop_cancelled_head() {
  if (heap_.empty()) {
    // Nothing can be pending: any recorded cancellations are stale
    // (cancel-after-fire) and can be forgotten.
    if (soa_) {
      cancelled_bits_.resize(0);
      bits_base_ = next_id_;
      cancelled_count_ = 0;
    } else {
      cancelled_.clear();
    }
    return;
  }
  while (!heap_.empty() && cancelled_backlog() != 0 && cancelled_contains(heap_.front().id)) {
    cancelled_erase(heap_.front().id);
    if (heap_.size() > 1) heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

bool Scheduler::pop_next(Entry& out) {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  out = std::move(heap_.front());
  if (heap_.size() > 1) heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return true;
}

bool Scheduler::peek(Time& at) {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  at = heap_.front().at;
  return true;
}

bool Scheduler::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  now_ = entry.at;
  entry.action();
  ++executed_;
  return true;
}

Time Scheduler::run_until(Time deadline) {
  Time next;
  while (peek(next)) {
    if (next > deadline) return now_;
    step();
  }
  return now_;
}

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

}  // namespace snd::sim
