// Topology metrics: degree statistics and the paper's accuracy measure
// (§3.2) -- the fraction of actual neighbor relations that survive into the
// functional topology.
#pragma once

#include <cstddef>

#include "topology/graph.h"

namespace snd::topology {

struct DegreeStats {
  double mean_out_degree = 0.0;
  std::size_t min_out_degree = 0;
  std::size_t max_out_degree = 0;
};

DegreeStats degree_stats(const Digraph& graph);

/// Fraction of `actual`'s edges present in `functional` (1.0 for an empty
/// actual graph). With `actual` = the geometric ground-truth neighbor graph
/// restricted to benign nodes, this is the paper's accuracy metric.
double edge_recall(const Digraph& actual, const Digraph& functional);

/// Fraction of `functional`'s edges that are also in `actual` (precision);
/// < 1.0 means fabricated relations were accepted.
double edge_precision(const Digraph& actual, const Digraph& functional);

}  // namespace snd::topology
