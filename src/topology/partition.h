// Partition analysis of the functional topology (paper §3.1): the
// functional graph may split into several partitions; a partition is
// "useful" per an application-supplied predicate (the paper's example:
// only the largest one), and nodes outside every useful partition are
// isolated.
#pragma once

#include <functional>
#include <vector>

#include "topology/graph.h"

namespace snd::topology {

/// Weakly connected components (edges treated as undirected), each sorted,
/// ordered by descending size then by smallest member.
std::vector<std::vector<NodeId>> weakly_connected_components(const Digraph& graph);

/// Components over *mutual* edges only (both directions present) -- the
/// conservative reading of "can actually be used by the application".
std::vector<std::vector<NodeId>> mutual_components(const Digraph& graph);

struct PartitionReport {
  std::vector<std::vector<NodeId>> partitions;  // descending size
  std::vector<NodeId> isolated;                 // nodes in no useful partition

  [[nodiscard]] std::size_t useful_count() const { return partitions.size(); }
};

/// Splits nodes into useful partitions and isolated nodes. `useful` decides
/// per component; defaults (when null) to "only the largest component".
PartitionReport analyze_partitions(
    const Digraph& graph,
    const std::function<bool(const std::vector<NodeId>&)>& useful = nullptr);

}  // namespace snd::topology
