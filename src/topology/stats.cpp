#include "topology/stats.h"

#include <algorithm>

namespace snd::topology {

DegreeStats degree_stats(const Digraph& graph) {
  DegreeStats stats;
  if (graph.node_count() == 0) return stats;
  stats.min_out_degree = SIZE_MAX;
  double total = 0.0;
  for (NodeId u : graph.nodes()) {
    const std::size_t degree = graph.successors(u).size();
    total += static_cast<double>(degree);
    stats.min_out_degree = std::min(stats.min_out_degree, degree);
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
  }
  stats.mean_out_degree = total / static_cast<double>(graph.node_count());
  return stats;
}

double edge_recall(const Digraph& actual, const Digraph& functional) {
  if (actual.edge_count() == 0) return 1.0;
  std::size_t kept = 0;
  for (const auto& [u, v] : actual.edges()) {
    if (functional.has_edge(u, v)) ++kept;
  }
  return static_cast<double>(kept) / static_cast<double>(actual.edge_count());
}

double edge_precision(const Digraph& actual, const Digraph& functional) {
  if (functional.edge_count() == 0) return 1.0;
  std::size_t genuine = 0;
  for (const auto& [u, v] : functional.edges()) {
    if (actual.has_edge(u, v)) ++genuine;
  }
  return static_cast<double>(genuine) / static_cast<double>(functional.edge_count());
}

}  // namespace snd::topology
