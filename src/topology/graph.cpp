#include "topology/graph.h"

#include <algorithm>

namespace snd::topology {

std::size_t intersection_size(const NeighborList& a, const NeighborList& b) {
  // Branchless two-pointer merge: the comparison outcomes advance the
  // iterators arithmetically instead of through a three-way branch the
  // predictor can't learn on random overlaps. Equivalent element-for-element
  // to the classic merge on sorted duplicate-free lists.
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    const NodeId va = *ia;
    const NodeId vb = *ib;
    count += static_cast<std::size_t>(va == vb);
    ia += static_cast<std::ptrdiff_t>(va <= vb);
    ib += static_cast<std::ptrdiff_t>(vb <= va);
  }
  return count;
}

NeighborList intersect(const NeighborList& a, const NeighborList& b) {
  NeighborList out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void insert_sorted(NeighborList& list, NodeId id) {
  const auto it = std::lower_bound(list.begin(), list.end(), id);
  if (it == list.end() || *it != id) list.insert(it, id);
}

void Digraph::add_node(NodeId id) { adjacency_.try_emplace(id); }

bool Digraph::add_edge(NodeId u, NodeId v) {
  add_node(v);
  const bool inserted = adjacency_[u].insert(v).second;
  if (inserted) ++edge_count_;
  return inserted;
}

bool Digraph::remove_edge(NodeId u, NodeId v) {
  const auto it = adjacency_.find(u);
  if (it == adjacency_.end()) return false;
  const bool erased = it->second.erase(v) > 0;
  if (erased) --edge_count_;
  return erased;
}

void Digraph::remove_node(NodeId id) {
  const auto it = adjacency_.find(id);
  if (it != adjacency_.end()) {
    edge_count_ -= it->second.size();
    adjacency_.erase(it);
  }
  for (auto& [u, succ] : adjacency_) {
    if (succ.erase(id) > 0) --edge_count_;
  }
}

bool Digraph::has_node(NodeId id) const { return adjacency_.contains(id); }

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto it = adjacency_.find(u);
  return it != adjacency_.end() && it->second.contains(v);
}

const std::set<NodeId>& Digraph::successors(NodeId u) const {
  static const std::set<NodeId> kEmpty;
  const auto it = adjacency_.find(u);
  return it != adjacency_.end() ? it->second : kEmpty;
}

std::vector<NodeId> Digraph::predecessors(NodeId u) const {
  std::vector<NodeId> out;
  for (const auto& [v, succ] : adjacency_) {
    if (succ.contains(u)) out.push_back(v);
  }
  return out;
}

NeighborList Digraph::successor_list(NodeId u) const {
  const auto& succ = successors(u);
  return NeighborList(succ.begin(), succ.end());
}

std::vector<NodeId> Digraph::nodes() const {
  std::vector<NodeId> out;
  out.reserve(adjacency_.size());
  for (const auto& [id, succ] : adjacency_) out.push_back(id);
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (const auto& [u, succ] : adjacency_) {
    for (NodeId v : succ) out.emplace_back(u, v);
  }
  return out;
}

bool Digraph::mutual_edge(NodeId u, NodeId v) const { return has_edge(u, v) && has_edge(v, u); }

Digraph Digraph::relabeled(const std::function<NodeId(NodeId)>& f) const {
  Digraph out;
  for (const auto& [u, succ] : adjacency_) {
    out.add_node(f(u));
    for (NodeId v : succ) out.add_edge(f(u), f(v));
  }
  return out;
}

Digraph Digraph::induced(const std::set<NodeId>& keep) const {
  Digraph out;
  for (const auto& [u, succ] : adjacency_) {
    if (!keep.contains(u)) continue;
    out.add_node(u);
    for (NodeId v : succ) {
      if (keep.contains(v)) out.add_edge(u, v);
    }
  }
  return out;
}

bool operator==(const Digraph& a, const Digraph& b) { return a.adjacency_ == b.adjacency_; }

}  // namespace snd::topology
