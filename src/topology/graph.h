// Directed graphs over node identities: the paper's tentative network
// topology G = (V, E) and functional topology Ḡ (Definitions 2 and 5).
// Adjacency is kept in ordered containers so iteration -- and therefore
// every simulation result derived from it -- is deterministic.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "util/ids.h"

namespace snd::topology {

/// Sorted, duplicate-free list of neighbor identities; the representation
/// of N(u) inside binding records.
using NeighborList = std::vector<NodeId>;

/// Number of elements common to two sorted NeighborLists.
std::size_t intersection_size(const NeighborList& a, const NeighborList& b);
/// The common elements themselves (sorted).
NeighborList intersect(const NeighborList& a, const NeighborList& b);
/// Insert preserving sort order; no-op if already present.
void insert_sorted(NeighborList& list, NodeId id);
/// Header-inline: membership runs once per delivered packet copy against the
/// receiver's neighbor list, so the call overhead outweighs the search.
[[nodiscard]] inline bool contains(const NeighborList& list, NodeId id) {
  return std::binary_search(list.begin(), list.end(), id);
}

class Digraph {
 public:
  /// Ensures `id` exists as an isolated node.
  void add_node(NodeId id);
  /// Adds edge u -> v (and both endpoints); returns false if it existed.
  bool add_edge(NodeId u, NodeId v);
  bool remove_edge(NodeId u, NodeId v);
  void remove_node(NodeId id);

  [[nodiscard]] bool has_node(NodeId id) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  /// Out-neighbors of u (empty set for unknown nodes).
  [[nodiscard]] const std::set<NodeId>& successors(NodeId u) const;
  /// Nodes with an edge into u. O(E); prefer successors in hot paths.
  [[nodiscard]] std::vector<NodeId> predecessors(NodeId u) const;
  [[nodiscard]] NeighborList successor_list(NodeId u) const;

  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  /// All edges as (u, v) pairs, lexicographically ordered.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// u -> v and v -> u both present (a confirmed bidirectional relation).
  [[nodiscard]] bool mutual_edge(NodeId u, NodeId v) const;

  /// Image of this graph under the identity relabeling `f` (Definition 3's
  /// B_f). `f` must be injective on the node set.
  [[nodiscard]] Digraph relabeled(const std::function<NodeId(NodeId)>& f) const;

  /// Subgraph induced by `keep`.
  [[nodiscard]] Digraph induced(const std::set<NodeId>& keep) const;

  /// Graph equality (same nodes and edges).
  friend bool operator==(const Digraph& a, const Digraph& b);

 private:
  std::map<NodeId, std::set<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace snd::topology
