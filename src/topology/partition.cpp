#include "topology/partition.h"

#include <algorithm>
#include <map>

namespace snd::topology {

namespace {

// Union-find over node IDs.
class DisjointSet {
 public:
  NodeId find(NodeId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_.emplace(x, x);
      return x;
    }
    if (it->second == x) return x;
    const NodeId root = find(it->second);
    it->second = root;  // path compression
    return root;
  }

  void unite(NodeId a, NodeId b) {
    const NodeId ra = find(a);
    const NodeId rb = find(b);
    if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

 private:
  std::map<NodeId, NodeId> parent_;
};

std::vector<std::vector<NodeId>> group_components(
    const Digraph& graph, const std::function<bool(NodeId, NodeId)>& joined) {
  DisjointSet sets;
  for (NodeId u : graph.nodes()) sets.find(u);
  for (const auto& [u, v] : graph.edges()) {
    if (joined(u, v)) sets.unite(u, v);
  }

  std::map<NodeId, std::vector<NodeId>> by_root;
  for (NodeId u : graph.nodes()) by_root[sets.find(u)].push_back(u);

  std::vector<std::vector<NodeId>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    components.push_back(std::move(members));
  }
  std::sort(components.begin(), components.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.front() < b.front();
  });
  return components;
}

}  // namespace

std::vector<std::vector<NodeId>> weakly_connected_components(const Digraph& graph) {
  return group_components(graph, [](NodeId, NodeId) { return true; });
}

std::vector<std::vector<NodeId>> mutual_components(const Digraph& graph) {
  return group_components(graph,
                          [&graph](NodeId u, NodeId v) { return graph.mutual_edge(u, v); });
}

PartitionReport analyze_partitions(
    const Digraph& graph, const std::function<bool(const std::vector<NodeId>&)>& useful) {
  const auto components = weakly_connected_components(graph);

  PartitionReport report;
  for (std::size_t i = 0; i < components.size(); ++i) {
    const bool is_useful = useful ? useful(components[i]) : i == 0;
    if (is_useful) {
      report.partitions.push_back(components[i]);
    } else {
      report.isolated.insert(report.isolated.end(), components[i].begin(), components[i].end());
    }
  }
  std::sort(report.isolated.begin(), report.isolated.end());
  return report;
}

}  // namespace snd::topology
