// Umbrella header for the SND library: secure neighbor discovery against
// node compromises in sensor networks (Liu, ICDCS 2009).
//
// Most applications only need:
//   core::SndDeployment  -- build a field, run the protocol (deployment_driver.h)
//   core::audit_safety   -- check d-safety empirically (safety.h)
//   adversary::Attacker  -- mount compromise/replication attacks (attacker.h)
//   analysis::FieldModel -- the paper's closed-form accuracy model (model.h)
#pragma once

#include "adversary/attacker.h"         // IWYU pragma: export
#include "adversary/chaff.h"            // IWYU pragma: export
#include "adversary/theorem_attack.h"   // IWYU pragma: export
#include "adversary/wormhole.h"         // IWYU pragma: export
#include "analysis/model.h"             // IWYU pragma: export
#include "apps/aggregation.h"           // IWYU pragma: export
#include "apps/clustering.h"            // IWYU pragma: export
#include "apps/georouting.h"            // IWYU pragma: export
#include "baseline/centralized.h"       // IWYU pragma: export
#include "baseline/parno.h"             // IWYU pragma: export
#include "core/deployment_driver.h"     // IWYU pragma: export
#include "core/safety.h"                // IWYU pragma: export
#include "core/validation.h"            // IWYU pragma: export
#include "crypto/blundo.h"              // IWYU pragma: export
#include "crypto/eg_pool.h"             // IWYU pragma: export
#include "verify/verifier.h"            // IWYU pragma: export
