#include "util/runtime_config.h"

#include <cstdlib>

namespace snd {

namespace {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

/// The shared boolean vocabulary of SND_SOA / SND_CRYPTO_FAST: anything but
/// an explicit "0" / "off" / "false" keeps the feature enabled.
bool env_enabled(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string_view value(raw);
  return !(value == "0" || value == "off" || value == "false");
}

RuntimeConfig& mutable_config() {
  static RuntimeConfig config = load_runtime_config_from_env();
  return config;
}

}  // namespace

RuntimeConfig load_runtime_config_from_env() {
  RuntimeConfig config;
  if (auto jobs = env_string("SND_JOBS")) {
    config.jobs = std::strtoll(jobs->c_str(), nullptr, 10);
  }
  config.soa = env_enabled("SND_SOA", true);
  config.crypto_fast = env_enabled("SND_CRYPTO_FAST", true);
  config.simd = env_enabled("SND_SIMD", true);
  config.log_level = env_string("SND_LOG_LEVEL");
  config.trace_level = env_string("SND_TRACE_LEVEL");
  config.trace_json = env_string("SND_TRACE_JSON");
  config.trace_bin = env_string("SND_TRACE_BIN");
  config.bench_dir = env_string("SND_BENCH_DIR");
  return config;
}

const RuntimeConfig& runtime_config() { return mutable_config(); }

void set_runtime_config_for_testing(const RuntimeConfig& config) {
  mutable_config() = config;
}

std::string bench_artifact_path(std::string_view filename) {
  const RuntimeConfig& config = runtime_config();
  if (!config.bench_dir) return std::string(filename);
  return *config.bench_dir + "/" + std::string(filename);
}

}  // namespace snd
