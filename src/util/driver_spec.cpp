#include "util/driver_spec.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <utility>

namespace snd::util::cli {

namespace {

/// Help column where flag descriptions start; longer invocations wrap.
constexpr std::size_t kHelpColumn = 30;

std::string flag_invocation(const FlagDef& def) {
  std::string text = "--" + def.name;
  if (def.type != FlagType::kBool) {
    text += "=" + (def.value_name.empty() ? std::string("VALUE") : def.value_name);
  }
  return text;
}

void print_flag(std::ostream& out, const FlagDef& def) {
  const std::string invocation = flag_invocation(def);
  out << "  " << invocation;
  if (invocation.size() + 2 >= kHelpColumn) {
    out << "\n" << std::string(kHelpColumn, ' ');
  } else {
    out << std::string(kHelpColumn - invocation.size() - 2, ' ');
  }
  out << def.help;
  const std::string def_text = def.default_text();
  if (!def_text.empty()) out << " [default: " << def_text << "]";
  out << "\n";
}

std::string trim_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

std::string FlagDef::default_text() const {
  switch (type) {
    case FlagType::kBool:
      return def_bool ? "true" : "";
    case FlagType::kInt:
      return std::to_string(def_int);
    case FlagType::kDouble:
      return trim_double(def_double);
    case FlagType::kString:
      return def_string;
  }
  return {};
}

FlagGroup jobs_group(std::size_t* out) {
  FlagGroup group;
  group.title = "Parallelism";
  FlagDef jobs;
  jobs.name = "jobs";
  jobs.type = FlagType::kInt;
  jobs.value_name = "N";
  jobs.help = "worker threads (default: SND_JOBS, then hardware concurrency)";
  jobs.min = 1.0;
  group.flags.push_back(std::move(jobs));
  group.resolve = [out](const Cli& cli) { *out = resolve_jobs(cli); };
  return group;
}

DriverSpec::DriverSpec(std::string name, std::string summary)
    : name_(std::move(name)), summary_(std::move(summary)) {}

DriverSpec& DriverSpec::flag(FlagDef def) {
  assert(find(def.name) == nullptr && "flag declared twice");
  assert(groups_.empty() && "declare plain flags before groups");
  flags_.push_back(std::move(def));
  return *this;
}

DriverSpec& DriverSpec::bool_flag(std::string name, std::string help) {
  FlagDef def;
  def.name = std::move(name);
  def.type = FlagType::kBool;
  def.help = std::move(help);
  return flag(std::move(def));
}

DriverSpec& DriverSpec::int_flag(std::string name, std::int64_t def_value,
                                 std::string value_name, std::string help,
                                 std::optional<std::int64_t> min,
                                 std::optional<std::int64_t> max) {
  FlagDef def;
  def.name = std::move(name);
  def.type = FlagType::kInt;
  def.def_int = def_value;
  def.value_name = std::move(value_name);
  def.help = std::move(help);
  if (min) def.min = static_cast<double>(*min);
  if (max) def.max = static_cast<double>(*max);
  return flag(std::move(def));
}

DriverSpec& DriverSpec::double_flag(std::string name, double def_value,
                                    std::string value_name, std::string help,
                                    std::optional<double> min, std::optional<double> max) {
  FlagDef def;
  def.name = std::move(name);
  def.type = FlagType::kDouble;
  def.def_double = def_value;
  def.value_name = std::move(value_name);
  def.help = std::move(help);
  def.min = min;
  def.max = max;
  return flag(std::move(def));
}

DriverSpec& DriverSpec::string_flag(
    std::string name, std::string def_value, std::string value_name, std::string help,
    std::function<std::optional<std::string>(std::string_view)> validator) {
  FlagDef def;
  def.name = std::move(name);
  def.type = FlagType::kString;
  def.def_string = std::move(def_value);
  def.value_name = std::move(value_name);
  def.help = std::move(help);
  def.validator = std::move(validator);
  return flag(std::move(def));
}

DriverSpec& DriverSpec::group(FlagGroup group) {
  GroupSpan span;
  span.title = std::move(group.title);
  span.first = flags_.size();
  span.count = group.flags.size();
  span.resolve = std::move(group.resolve);
  for (FlagDef& def : group.flags) {
    assert(find(def.name) == nullptr && "group flag collides with an existing flag");
    flags_.push_back(std::move(def));
  }
  groups_.push_back(std::move(span));
  return *this;
}

DriverSpec& DriverSpec::positional(std::string name, std::string help,
                                   std::size_t min_count) {
  PositionalDef def;
  def.name = std::move(name);
  def.help = std::move(help);
  def.min_count = min_count;
  positionals_.push_back(std::move(def));
  return *this;
}

const FlagDef* DriverSpec::find(std::string_view name) const {
  for (const FlagDef& def : flags_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

void DriverSpec::print_help(std::ostream& out) const {
  out << "usage: " << name_ << " [flags]";
  for (const PositionalDef& def : positionals_) {
    out << (def.min_count > 0 ? " <" : " [") << def.name
        << (def.min_count > 0 ? ">" : "]");
  }
  out << "\n\n" << summary_ << "\n";

  const std::size_t plain = groups_.empty() ? flags_.size() : groups_.front().first;
  if (plain > 0) {
    out << "\nFlags:\n";
    for (std::size_t i = 0; i < plain; ++i) print_flag(out, flags_[i]);
  }
  for (const GroupSpan& span : groups_) {
    if (span.count == 0) continue;
    out << "\n" << span.title << ":\n";
    for (std::size_t i = 0; i < span.count; ++i) print_flag(out, flags_[span.first + i]);
  }
  if (!positionals_.empty()) {
    out << "\nPositional arguments:\n";
    for (const PositionalDef& def : positionals_) {
      out << "  " << def.name;
      if (def.name.size() + 2 >= kHelpColumn) {
        out << "\n" << std::string(kHelpColumn, ' ');
      } else {
        out << std::string(kHelpColumn - def.name.size() - 2, ' ');
      }
      out << def.help << "\n";
    }
  }
  out << "\n  --help" << std::string(kHelpColumn - 8, ' ') << "show this message and exit\n";
}

Driver DriverSpec::parse(int argc, const char* const* argv) const {
  return parse(argc, argv, std::cout, std::cerr);
}

Driver DriverSpec::parse(int argc, const char* const* argv, std::ostream& out,
                         std::ostream& err) const {
  Driver driver(this, Cli(argc, argv));
  const Cli& cli = driver.cli_;

  if (cli.has("help")) {
    print_help(out);
    driver.ok_ = false;
    driver.exit_code_ = 0;
    return driver;
  }

  // Type / range / custom checks record onto the Cli so validate() reports
  // them alongside unknown-flag and duplicate-flag problems in one pass.
  for (const FlagDef& def : flags_) {
    if (!cli.has(def.name)) continue;
    const std::string raw = cli.get(def.name, "");
    switch (def.type) {
      case FlagType::kBool:
        break;
      case FlagType::kInt: {
        const std::int64_t value = cli.get_int(def.name, def.def_int);
        const double as_double = static_cast<double>(value);
        if (def.min && as_double < *def.min) {
          cli.record_error("--" + def.name + "=" + raw + " (must be >= " +
                           std::to_string(static_cast<std::int64_t>(*def.min)) + ")");
        } else if (def.max && as_double > *def.max) {
          cli.record_error("--" + def.name + "=" + raw + " (must be <= " +
                           std::to_string(static_cast<std::int64_t>(*def.max)) + ")");
        }
        break;
      }
      case FlagType::kDouble: {
        const double value = cli.get_double(def.name, def.def_double);
        if (def.min && value < *def.min) {
          cli.record_error("--" + def.name + "=" + raw + " (must be >= " +
                           trim_double(*def.min) + ")");
        } else if (def.max && value > *def.max) {
          cli.record_error("--" + def.name + "=" + raw + " (must be <= " +
                           trim_double(*def.max) + ")");
        }
        break;
      }
      case FlagType::kString:
        break;
    }
    if (def.validator) {
      if (auto message = def.validator(raw)) {
        cli.record_error("--" + def.name + "=" + raw + " (" + *message + ")");
      }
    }
  }

  // Group resolvers may record further errors (e.g. unknown trace levels).
  for (const GroupSpan& span : groups_) {
    if (span.resolve) span.resolve(cli);
  }

  std::size_t required_positionals = 0;
  for (const PositionalDef& def : positionals_) required_positionals += def.min_count;
  if (cli.positional().size() < required_positionals) {
    cli.record_error(positionals_.front().name +
                     " (missing required positional argument)");
  }
  if (positionals_.empty() && !cli.positional().empty()) {
    cli.record_error("'" + std::string(cli.positional().front()) +
                     "' (positional arguments not accepted)");
  }

  std::vector<std::string_view> allowed;
  allowed.reserve(flags_.size() + 1);
  for (const FlagDef& def : flags_) allowed.push_back(def.name);
  allowed.push_back("help");
  if (!cli.validate(err, allowed, "[flags] (run with --help for details)")) {
    driver.ok_ = false;
    driver.exit_code_ = 2;
  }
  return driver;
}

bool Driver::get_bool(std::string_view name) const {
  const FlagDef* def = spec_->find(name);
  assert(def != nullptr && def->type == FlagType::kBool);
  return cli_.get_bool(name, def != nullptr ? def->def_bool : false);
}

std::int64_t Driver::get_int(std::string_view name) const {
  const FlagDef* def = spec_->find(name);
  assert(def != nullptr && def->type == FlagType::kInt);
  return cli_.get_int(name, def != nullptr ? def->def_int : 0);
}

double Driver::get_double(std::string_view name) const {
  const FlagDef* def = spec_->find(name);
  assert(def != nullptr && def->type == FlagType::kDouble);
  return cli_.get_double(name, def != nullptr ? def->def_double : 0.0);
}

std::string Driver::get(std::string_view name) const {
  const FlagDef* def = spec_->find(name);
  assert(def != nullptr && def->type == FlagType::kString);
  return cli_.get(name, def != nullptr ? def->def_string : std::string_view{});
}

}  // namespace snd::util::cli
