// Minimal command-line flag parser for the bench and example binaries.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snd::util {

class Cli {
 public:
  /// Parses argv; unknown flags are retained and reported by unknown_flags().
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace snd::util
