// Minimal command-line flag parser for the bench and example binaries.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snd::util {

class Cli {
 public:
  /// Parses argv; unknown flags are retained and reported by validate().
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Malformed numeric values recorded by get_int/get_double lookups.
  [[nodiscard]] const std::vector<std::string>& errors() const { return errors_; }

  /// Records a validation error from outside the numeric getters (e.g. an
  /// enum-valued flag with an unknown value); validate() will report it and
  /// return false. Const for the same reason errors_ is mutable: lookups on
  /// a parsed (logically immutable) Cli may fail.
  void record_error(std::string message) const { errors_.push_back(std::move(message)); }

  /// True when every flag given on the command line is in `allowed`, no flag
  /// was given twice, and every numeric lookup so far parsed cleanly;
  /// otherwise prints the offending flags plus `usage` to `err`. Call after
  /// reading all flags, and exit non-zero on false so CI smoke runs can
  /// assert on bad invocations.
  [[nodiscard]] bool validate(std::ostream& err,
                              std::initializer_list<std::string_view> allowed,
                              std::string_view usage = {}) const;
  /// Same, with a runtime-assembled allow list (cli::DriverSpec uses this).
  [[nodiscard]] bool validate(std::ostream& err,
                              const std::vector<std::string_view>& allowed,
                              std::string_view usage = {}) const;

  /// Flags that appeared more than once on the command line (rejected by
  /// validate(); the first occurrence stays readable through the getters).
  [[nodiscard]] const std::vector<std::string>& duplicates() const { return duplicates_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> duplicates_;
  mutable std::vector<std::string> errors_;
};

/// Worker count for Monte-Carlo sweeps: the --jobs flag if present, else the
/// SND_JOBS environment variable, else std::thread::hardware_concurrency()
/// (at least 1). Values < 1 are clamped to 1.
[[nodiscard]] std::size_t resolve_jobs(const Cli& cli);

}  // namespace snd::util
