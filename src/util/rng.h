// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every simulation, bench, and test takes an explicit seed; the generator is
// xoshiro256** seeded via SplitMix64, which is fast, has a 256-bit state, and
// produces identical streams on every platform (unlike std::mt19937 paired
// with std::uniform_*_distribution, whose outputs are implementation
// defined).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace snd::util {

/// Deterministically derives the seed for trial `trial_index` of a sweep
/// seeded with `base_seed` (SplitMix64-based mixing, bit-identical on every
/// platform). runner::TrialRunner seeds every trial through this function,
/// so sharding trials across workers can never change their random streams.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t trial_index);

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  std::uint64_t uniform_int(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stdev);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Poisson-distributed count (Knuth for small mean, normal approx beyond).
  std::uint64_t poisson(double mean);

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = uniform_int(i);
      std::swap(first[i - 1], first[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace snd::util
