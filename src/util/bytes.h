// Byte-buffer utilities: hex encoding, integer (de)serialization, and a
// bounds-checked reader used by all wire formats in the library.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace snd::util {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of a byte span.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decode a hex string; returns std::nullopt on odd length or bad digits.
std::optional<Bytes> from_hex(std::string_view hex);

/// Append big-endian fixed-width integers (wire formats are big-endian).
void put_u8(Bytes& out, std::uint8_t v);
void put_u16(Bytes& out, std::uint16_t v);
void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);
void put_bytes(Bytes& out, std::span<const std::uint8_t> data);
/// Length-prefixed (u16) byte string.
void put_var_bytes(Bytes& out, std::span<const std::uint8_t> data);

/// Append an unsigned LEB128 varint (7 value bits per byte, little-endian
/// groups, high bit = continuation). 1 byte for values < 128; at most 10
/// bytes for a full 64-bit value. The columnar shard format stores all its
/// event counts this way (docs/SHARDING.md).
void put_varint(Bytes& out, std::uint64_t v);
/// ZigZag-folded signed varint (small magnitudes stay small either sign).
void put_varint_signed(Bytes& out, std::int64_t v);

/// Sequential bounds-checked reader over an immutable byte span.
/// All getters return std::nullopt once the buffer is exhausted; after a
/// failed read the reader is poisoned and every further read fails, so
/// callers may check a single read at the end of a parse sequence.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  // The fixed-width getters live in the header: wire parsing runs once per
  // delivered packet copy (hundreds of millions of reads per sweep), and an
  // out-of-line call per field costs more than the read itself.
  std::optional<std::uint8_t> u8() {
    if (!take(1)) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint16_t> u16() {
    if (!take(2)) return std::nullopt;
    const auto v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    if (!take(4)) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::optional<std::uint64_t> u64() {
    if (!take(8)) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }
  /// Unsigned LEB128 varint. Rejects encodings longer than 10 bytes and
  /// 10-byte encodings whose final group overflows 64 bits, so every value
  /// has exactly one accepted encoding length bound.
  std::optional<std::uint64_t> varint();
  /// ZigZag-folded signed varint (inverse of put_varint_signed).
  std::optional<std::int64_t> varint_signed();
  /// Read exactly n raw bytes.
  std::optional<Bytes> bytes(std::size_t n);
  /// Read a u16 length prefix followed by that many bytes.
  std::optional<Bytes> var_bytes();
  /// Zero-copy variants: the returned span aliases the reader's underlying
  /// buffer and is valid only as long as that buffer is.
  std::optional<std::span<const std::uint8_t>> bytes_view(std::size_t n);
  std::optional<std::span<const std::uint8_t>> var_bytes_view();

  [[nodiscard]] std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }
  /// True iff no read has failed so far.
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Constant-time byte-span equality (length leak only). Used for MAC checks.
bool constant_time_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace snd::util
