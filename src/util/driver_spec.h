// Declarative command-line surface for the bench / example / app drivers.
//
// Every driver used to hand-roll the same four steps -- construct a Cli,
// read each flag with an inline default, repeat every flag name in a
// validate() allow list, and re-implement range checks like "--seeds must
// be >= 1" -- twenty-odd times across bench/. DriverSpec declares each flag
// exactly once (name, type, default, range/validator, help text) and
// derives everything from that single declaration:
//
//   * typed lookup with the declared default (Driver::get_int(name)),
//   * --help output grouped by flag group,
//   * unknown-flag and duplicate-flag rejection,
//   * type/range/validator errors with the offending value.
//
// Cross-cutting flag surfaces (--jobs, the --log/--trace family, the
// --shard checkpoint family, --fault-plan) are registered as reusable
// FlagGroups whose owning subsystem both declares the flags and resolves
// them into a typed config during parse():
//
//   obs::ObsConfig obs_config;
//   std::size_t jobs = 1;
//   util::cli::DriverSpec spec("fig3_threshold", "Figure 3 reproduction.");
//   spec.int_flag("seeds", 20, "N", "independent seeds per threshold", 1)
//       .group(util::cli::jobs_group(&jobs))
//       .group(obs::obs_flag_group(&obs_config));
//   const util::cli::Driver cli = spec.parse(argc, argv);
//   if (!cli.ok()) return cli.exit_code();   // 0 after --help, 2 on errors
//   const auto seeds = cli.get_int("seeds");
//
// A Driver borrows its spec; keep the DriverSpec alive for as long as the
// Driver is used (both live in main() in practice).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/cli.h"

namespace snd::util::cli {

enum class FlagType : std::uint8_t { kBool, kInt, kDouble, kString };

/// One declared flag. Use the DriverSpec::*_flag helpers instead of filling
/// this in by hand; groups build vectors of these.
struct FlagDef {
  std::string name;
  FlagType type = FlagType::kString;
  std::string help;
  /// Metavar shown in --help ("N", "PATH", ...); empty for booleans.
  std::string value_name;

  // Typed defaults (the member matching `type` is the live one).
  bool def_bool = false;
  std::int64_t def_int = 0;
  double def_double = 0.0;
  std::string def_string;

  // Optional numeric range (ints and doubles).
  std::optional<double> min;
  std::optional<double> max;

  /// Optional value check; returns an error message or nullopt when valid.
  std::function<std::optional<std::string>(std::string_view)> validator;

  /// The default rendered for --help; empty when there is nothing to show.
  [[nodiscard]] std::string default_text() const;
};

/// A reusable cross-cutting flag surface: the flags plus a resolver run by
/// DriverSpec::parse() after type checks. The resolver typically calls the
/// owning subsystem's resolve_*() (which records errors on the Cli) and
/// stores the result through a pointer bound at group construction.
struct FlagGroup {
  std::string title;
  std::vector<FlagDef> flags;
  std::function<void(const Cli&)> resolve;
};

/// The shared --jobs surface: worker count for Monte-Carlo sweeps, resolved
/// through resolve_jobs (flag, then SND_JOBS, then hardware concurrency).
[[nodiscard]] FlagGroup jobs_group(std::size_t* out);

class Driver;

class DriverSpec {
 public:
  /// `name` is the canonical binary name; `summary` is the first --help
  /// paragraph (one or two sentences on what the driver measures).
  DriverSpec(std::string name, std::string summary);

  DriverSpec& flag(FlagDef def);
  DriverSpec& bool_flag(std::string name, std::string help);
  DriverSpec& int_flag(std::string name, std::int64_t def, std::string value_name,
                       std::string help, std::optional<std::int64_t> min = std::nullopt,
                       std::optional<std::int64_t> max = std::nullopt);
  DriverSpec& double_flag(std::string name, double def, std::string value_name,
                          std::string help, std::optional<double> min = std::nullopt,
                          std::optional<double> max = std::nullopt);
  DriverSpec& string_flag(
      std::string name, std::string def, std::string value_name, std::string help,
      std::function<std::optional<std::string>(std::string_view)> validator = {});
  DriverSpec& group(FlagGroup group);
  /// Declares positional arguments for --help and arity checking.
  DriverSpec& positional(std::string name, std::string help, std::size_t min_count = 0);

  /// Parses argv, runs type/range/validator checks and group resolvers, and
  /// reports problems on `err`. --help prints to `out` and yields a Driver
  /// with ok() == false and exit_code() == 0.
  [[nodiscard]] Driver parse(int argc, const char* const* argv, std::ostream& out,
                             std::ostream& err) const;
  /// Same, bound to std::cout / std::cerr.
  [[nodiscard]] Driver parse(int argc, const char* const* argv) const;

  void print_help(std::ostream& out) const;

  [[nodiscard]] const FlagDef* find(std::string_view name) const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Driver;

  struct GroupSpan {
    std::string title;
    std::size_t first = 0;
    std::size_t count = 0;
    std::function<void(const Cli&)> resolve;
  };
  struct PositionalDef {
    std::string name;
    std::string help;
    std::size_t min_count = 0;
  };

  std::string name_;
  std::string summary_;
  std::vector<FlagDef> flags_;
  std::vector<GroupSpan> groups_;  ///< ungrouped flags live before groups_[0]
  std::vector<PositionalDef> positionals_;
};

/// The parse result: the underlying Cli plus typed, default-applying
/// lookups against the spec's declarations. Lookups of undeclared names
/// abort in debug builds (they are driver programming errors, not user
/// errors).
class Driver {
 public:
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] int exit_code() const { return exit_code_; }

  [[nodiscard]] bool has(std::string_view name) const { return cli_.has(name); }
  [[nodiscard]] bool get_bool(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return cli_.positional();
  }
  [[nodiscard]] const std::string& program() const { return cli_.program(); }
  /// The underlying parser, for subsystem resolvers that take a Cli.
  [[nodiscard]] const Cli& cli() const { return cli_; }

 private:
  friend class DriverSpec;
  Driver(const DriverSpec* spec, Cli cli) : spec_(spec), cli_(std::move(cli)) {}

  const DriverSpec* spec_;
  Cli cli_;
  bool ok_ = true;
  int exit_code_ = 0;
};

}  // namespace snd::util::cli
