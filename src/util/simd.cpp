#include "util/simd.h"

#include <atomic>

#include "util/runtime_config.h"

namespace snd::util {

namespace {

std::atomic<bool>& simd_flag() {
  static std::atomic<bool> enabled{runtime_config().simd};
  return enabled;
}

SimdTier probe_tier() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
#endif
  return SimdTier::kScalar;
}

/// kNoForce means "dispatch on detection alone".
constexpr int kNoForce = -1;

std::atomic<int>& forced_tier() {
  static std::atomic<int> tier{kNoForce};
  return tier;
}

}  // namespace

bool simd_enabled() { return simd_flag().load(std::memory_order_relaxed); }

void set_simd_enabled(bool enabled) {
  simd_flag().store(enabled, std::memory_order_relaxed);
}

SimdTier detected_simd_tier() {
  static const SimdTier tier = probe_tier();
  return tier;
}

SimdTier active_simd_tier() {
  const SimdTier ceiling = detected_simd_tier();
  const int forced = forced_tier().load(std::memory_order_relaxed);
  if (forced == kNoForce) return ceiling;
  const auto wanted = static_cast<SimdTier>(forced);
  return wanted < ceiling ? wanted : ceiling;
}

void set_forced_simd_tier(std::optional<SimdTier> tier) {
  forced_tier().store(tier ? static_cast<int>(*tier) : kNoForce,
                      std::memory_order_relaxed);
}

}  // namespace snd::util
