#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace snd::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  // Two dependent SplitMix64 outputs: the first whitens the base seed, the
  // second folds in the trial index on a distinct odd-multiplier stream, so
  // (base, i) and (base, j) collide only if i == j.
  std::uint64_t x = base_seed;
  std::uint64_t h = splitmix64(x);
  x ^= trial_index * 0xd1342543de82ef95ULL;
  return h ^ splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; seed==crafted values
  // cannot produce it via splitmix64, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stdev) { return mean + stdev * normal(); }

double Rng::exponential(double rate) {
  double u = 0.0;
  while (u == 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

Rng Rng::fork() { return Rng(next()); }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(uniform_int(static_cast<std::uint64_t>(n - i)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace snd::util
