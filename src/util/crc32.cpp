#include "util/crc32.h"

#include <array>

namespace snd::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xffffffffu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  const auto& t = table();
  for (std::uint8_t b : data) state = t[(state ^ b) & 0xff] ^ (state >> 8);
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xffffffffu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace snd::util
