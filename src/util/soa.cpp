#include "util/soa.h"

#include <atomic>

#include "util/runtime_config.h"

namespace snd::util {

namespace {

std::atomic<bool>& soa_flag() {
  static std::atomic<bool> enabled{runtime_config().soa};
  return enabled;
}

}  // namespace

bool soa_enabled() { return soa_flag().load(std::memory_order_relaxed); }

void set_soa_enabled(bool enabled) {
  soa_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace snd::util
