#include "util/soa.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace snd::util {

namespace {

bool soa_from_env() {
  const char* raw = std::getenv("SND_SOA");
  if (raw == nullptr) return true;
  const std::string_view value(raw);
  return !(value == "0" || value == "off" || value == "false");
}

std::atomic<bool>& soa_flag() {
  static std::atomic<bool> enabled{soa_from_env()};
  return enabled;
}

}  // namespace

bool soa_enabled() { return soa_flag().load(std::memory_order_relaxed); }

void set_soa_enabled(bool enabled) {
  soa_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace snd::util
