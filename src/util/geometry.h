// 2-D geometry for the deployment field: points, circles, the two-disk lens
// area behind the paper's analytical model, and the minimum enclosing circle
// used by the safety auditor to measure d-safety empirically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace snd::util {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] double norm() const;
  [[nodiscard]] double norm_squared() const { return x * x + y * y; }
};

double distance(Vec2 a, Vec2 b);
double distance_squared(Vec2 a, Vec2 b);
double dot(Vec2 a, Vec2 b);
/// z-component of the 3-D cross product; sign gives orientation.
double cross(Vec2 a, Vec2 b);

struct Circle {
  Vec2 center;
  double radius = 0.0;

  /// Containment with a small tolerance for floating-point robustness.
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const;
};

/// Axis-aligned rectangle [0,w] x [0,h]-style field.
struct Rect {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] double width() const { return hi.x - lo.x; }
  [[nodiscard]] double height() const { return hi.y - lo.y; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] bool contains(Vec2 p) const;
  [[nodiscard]] Vec2 center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }
};

/// Area of the intersection (lens) of two radius-r disks whose centers are
/// d apart. Zero when d >= 2r; the full disk when d == 0.
double lens_area(double r, double d);

/// The paper's expected common-neighbor count N(c): the number of other
/// nodes expected to fall inside both radio disks of two nodes at distance
/// c*R, with deployment density `density` (nodes per unit area).
///   N(c) = density * R^2 * (2*acos(c/2) - c*sqrt(1 - (c/2)^2)) - 2
/// The -2 excludes the two endpoint nodes themselves.
double expected_common_neighbors(double density, double radio_range, double c);

/// Smallest circle enclosing all points (Welzl's algorithm, expected O(n)).
/// Returns a zero-radius circle at the origin for an empty input.
Circle minimum_enclosing_circle(std::span<const Vec2> points);

/// Area of circle ∩ rectangle, exact via the standard signed-quadrant
/// decomposition. Used by the border-effect model: a node near the field
/// edge has only disk∩field neighbors, which the paper's infinite-plane
/// formulas ignore (hence its center-node measurements).
double circle_rect_intersection_area(const Circle& circle, const Rect& rect);

}  // namespace snd::util
