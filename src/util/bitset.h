// Fixed-capacity bitset with explicit sizing, in the data-oriented idiom of
// game-engine runtimes: capacity is chosen by the owner (not a template
// parameter, not amortized doubling), storage is a flat array of 64-bit
// words, and every operation is branch-light word arithmetic. Used for the
// scheduler's windowed cancel set and the SoA verdict cache, where the
// universe of indices is dense and bounded by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snd::util {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits) { resize(bits); }

  /// Grows (or shrinks) to hold `bits` bits; existing bits below the new
  /// capacity are preserved, new bits start clear.
  void resize(std::size_t bits) {
    words_.resize((bits + 63) / 64, 0);
    bits_ = bits;
    trim_tail();
  }

  [[nodiscard]] std::size_t capacity() const { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Clears every bit, keeping capacity.
  void clear() {
    for (std::uint64_t& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(popcount(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Direct word access for scans and bulk ops.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  static int popcount(std::uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(w);
#else
    int n = 0;
    while (w != 0) {
      w &= w - 1;
      ++n;
    }
    return n;
#endif
  }

  /// Zeroes bits past capacity in the last word so count()/any() stay exact
  /// after a shrink.
  void trim_tail() {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace snd::util
