// Minimal recursive-descent JSON reader for the harness's own artifacts
// (fault plans, FAILCASE_*.json). The library only ever parses JSON it
// wrote itself, so the reader favors exact integer round-trips over
// generality: numeric values keep their source text and are re-parsed as
// u64/i64/double on demand (a 64-bit seed must survive a round trip that a
// double cannot represent).
//
// Writing stays with the existing hand-serializers (SweepReport::to_json,
// TraceSummary::to_json, fault::FaultPlan::to_json); this header is the
// read side only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace snd::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (surrounding whitespace tolerated); nullopt on
  /// any syntax error or trailing garbage. Depth-limited, so adversarial
  /// nesting cannot overflow the stack.
  static std::optional<JsonValue> parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; nullopt when the value has a different type (or, for
  /// the integer forms, when the literal is not exactly representable).
  [[nodiscard]] std::optional<bool> as_bool() const;
  [[nodiscard]] std::optional<double> as_double() const;
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const;
  [[nodiscard]] std::optional<std::int64_t> as_i64() const;
  [[nodiscard]] std::optional<std::string_view> as_string() const;

  /// Array elements (empty for non-arrays).
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// First member with `key`; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // -- Shorthands for "required field" extraction ------------------------
  [[nodiscard]] std::optional<std::uint64_t> u64(std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> i64(std::string_view key) const;
  [[nodiscard]] std::optional<double> number(std::string_view key) const;
  [[nodiscard]] std::optional<std::string_view> string(std::string_view key) const;
  [[nodiscard]] std::optional<bool> boolean(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  /// Numbers keep their literal text; strings their unescaped value.
  std::string scalar_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

/// Escapes `s` into a double-quoted JSON string literal (the write-side
/// helper shared by the hand-serializers that emit user-controlled text).
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace snd::util
