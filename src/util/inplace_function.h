// Small-buffer-optimized move-only callable.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer (2 pointers on libstdc++), which puts one malloc/free on every
// scheduled simulator event. InplaceFunction stores captures up to Capacity
// bytes inline in the object; larger (or over-aligned) captures fall back to
// a single heap allocation so arbitrary callables still work. Move-only:
// the simulator never copies queued events, and requiring copyability would
// forbid move-only captures.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace snd::util {

template <typename Signature, std::size_t Capacity = 64>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*), "capacity must hold at least a pointer");

 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>>
    requires(!std::is_same_v<D, InplaceFunction> &&
             std::is_invocable_r_v<R, D&, Args...>)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True iff the target lives behind the heap fallback (capture larger
  /// than Capacity or over-aligned). Exposed for tests and benches.
  [[nodiscard]] bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr bool stores_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* storage, Args&&... args) -> R {
        return std::invoke(*static_cast<D*>(storage), std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* storage) noexcept { static_cast<D*>(storage)->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* storage, Args&&... args) -> R {
        return std::invoke(**static_cast<D**>(storage), std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* storage) noexcept { delete *static_cast<D**>(storage); },
      true,
  };

  void move_from(InplaceFunction& other) noexcept {
    if (other.ops_ == nullptr) return;
    other.ops_->relocate(other.storage_, storage_);
    ops_ = std::exchange(other.ops_, nullptr);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace snd::util
