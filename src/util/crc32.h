// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// footers of the binary artifact formats (.sndshard checkpoint chunks).
// Not cryptographic -- it detects truncation and accidental corruption,
// which is all an append-only checkpoint file needs; authenticated storage
// is out of scope here.
#pragma once

#include <cstdint>
#include <span>

namespace snd::util {

/// One-shot CRC-32 of a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed `crc32_update` the previous return value (seed
/// with crc32_init()) and finish with crc32_final.
[[nodiscard]] std::uint32_t crc32_init();
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);
[[nodiscard]] std::uint32_t crc32_final(std::uint32_t state);

}  // namespace snd::util
