#include "util/bytes.h"

#include <array>

namespace snd::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_bytes(Bytes& out, std::span<const std::uint8_t> data) {
  out.insert(out.end(), data.begin(), data.end());
}

void put_var_bytes(Bytes& out, std::span<const std::uint8_t> data) {
  put_u16(out, static_cast<std::uint16_t>(data.size()));
  put_bytes(out, data);
}

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_varint_signed(Bytes& out, std::int64_t v) {
  // ZigZag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

std::optional<std::uint64_t> ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const auto byte = u8();
    if (!byte) return std::nullopt;
    // The 10th group holds the top single bit of a 64-bit value; anything
    // above it would silently truncate, so reject it as malformed.
    if (shift == 63 && (*byte & 0xfe) != 0) {
      ok_ = false;
      return std::nullopt;
    }
    v |= static_cast<std::uint64_t>(*byte & 0x7f) << shift;
    if ((*byte & 0x80) == 0) return v;
  }
  ok_ = false;
  return std::nullopt;
}

std::optional<std::int64_t> ByteReader::varint_signed() {
  const auto zz = varint();
  if (!zz) return std::nullopt;
  return static_cast<std::int64_t>((*zz >> 1) ^ (~(*zz & 1) + 1));
}

std::optional<Bytes> ByteReader::bytes(std::size_t n) {
  if (!take(n)) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<Bytes> ByteReader::var_bytes() {
  const auto len = u16();
  if (!len) return std::nullopt;
  return bytes(*len);
}

std::optional<std::span<const std::uint8_t>> ByteReader::bytes_view(std::size_t n) {
  if (!take(n)) return std::nullopt;
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::optional<std::span<const std::uint8_t>> ByteReader::var_bytes_view() {
  const auto len = u16();
  if (!len) return std::nullopt;
  return bytes_view(*len);
}

bool constant_time_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace snd::util
