#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace snd::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// The installed sink, guarded for install-vs-log races. Logging is not a
/// hot path; one mutex keeps the handoff simple and safe.
std::mutex g_sink_mutex;
LogSink& sink_storage() {
  static LogSink sink;
  return sink;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(std::string_view name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
                         LogLevel::kOff}) {
    if (name == log_level_name(level)) return level;
  }
  if (name.size() == 1 && name[0] >= '0' && name[0] <= '4') {
    return static_cast<LogLevel>(name[0] - '0');
  }
  return std::nullopt;
}

void set_log_sink(LogSink sink) {
  const std::scoped_lock lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  {
    const std::scoped_lock lock(g_sink_mutex);
    if (const LogSink& sink = sink_storage()) {
      sink(level, message);
      return;
    }
  }
  std::fprintf(stderr, "[%s] %s\n", std::string(log_level_name(level)).c_str(), message.c_str());
}

}  // namespace snd::util
