// Flat sorted-array associative containers for the data-oriented core, and
// the Dual* wrappers that keep the seed heap-node containers selectable.
//
// FlatMap/FlatSet store sorted, duplicate-free contiguous arrays: one
// allocation, cache-line friendly scans, and iteration in exactly the key
// order std::map/std::set produce -- which is what lets the SoA layout stay
// bit-identical to the seed layout (every simulation loop that walks one of
// these containers draws RNG values in an unchanged order).
//
// DualMap/DualSet pick their representation from util::soa_enabled() at
// construction: the seed std::map/std::set (kept verbatim for A/B byte
// identity), or the flat arrays. Per-node protocol state is dominated by
// containers holding ~radio-degree entries, where a contiguous array beats
// a red-black tree on every axis that matters at million-node scale: no
// per-entry 48-byte node header, no pointer chasing, no allocator traffic.
//
// References returned by find()/get_or_insert() are invalidated by any
// mutation of the flat representation (vector growth or shifting); callers
// on hot paths consume them immediately, as with PairKeyCache.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/soa.h"

namespace snd::util {

/// Sorted-vector map. Keys unique, iteration ascending by key.
template <typename Key, typename Value>
class FlatMap {
 public:
  using Item = std::pair<Key, Value>;

  [[nodiscard]] const Value* find(const Key& key) const {
    const auto it = lower(key);
    return (it != items_.end() && it->first == key) ? &it->second : nullptr;
  }
  [[nodiscard]] Value* find(const Key& key) {
    const auto it = lower(key);
    return (it != items_.end() && it->first == key) ? &it->second : nullptr;
  }
  [[nodiscard]] bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Reference to the value for `key`, default-constructing it if absent.
  Value& get_or_insert(const Key& key) {
    auto it = lower(key);
    if (it == items_.end() || it->first != key) {
      it = items_.insert(it, Item{key, Value{}});
    }
    return it->second;
  }

  void insert_or_assign(const Key& key, Value value) {
    auto it = lower(key);
    if (it != items_.end() && it->first == key) {
      it->second = std::move(value);
    } else {
      items_.insert(it, Item{key, std::move(value)});
    }
  }

  /// Inserts only if absent; returns true when the insertion happened.
  bool try_emplace(const Key& key, Value value) {
    auto it = lower(key);
    if (it != items_.end() && it->first == key) return false;
    items_.insert(it, Item{key, std::move(value)});
    return true;
  }

  bool erase(const Key& key) {
    const auto it = lower(key);
    if (it == items_.end() || it->first != key) return false;
    items_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] const std::vector<Item>& items() const { return items_; }
  [[nodiscard]] auto begin() const { return items_.begin(); }
  [[nodiscard]] auto end() const { return items_.end(); }

 private:
  [[nodiscard]] auto lower(const Key& key) {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [](const Item& item, const Key& k) { return item.first < k; });
  }
  [[nodiscard]] auto lower(const Key& key) const {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [](const Item& item, const Key& k) { return item.first < k; });
  }

  std::vector<Item> items_;
};

/// Sorted-vector set. Iteration ascending.
template <typename Key>
class FlatSet {
 public:
  /// Returns true when `key` was newly inserted.
  bool insert(const Key& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return false;
    keys_.insert(it, key);
    return true;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  void clear() { keys_.clear(); }
  [[nodiscard]] const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
};

/// Map whose representation -- seed std::map or FlatMap -- is chosen from
/// util::soa_enabled() at construction. Both iterate in ascending key order
/// and implement identical semantics, so simulations are bit-identical
/// across the switch.
template <typename Key, typename Value>
class DualMap {
 public:
  DualMap() : soa_(soa_enabled()) {}

  class const_iterator {
   public:
    const_iterator() = default;
    /// Key/value view of the current entry; references stay valid until the
    /// container mutates (one step longer than the iterator itself needs).
    [[nodiscard]] std::pair<const Key&, const Value&> operator*() const {
      return soa_ ? std::pair<const Key&, const Value&>{flat_->first, flat_->second}
                  : std::pair<const Key&, const Value&>{map_->first, map_->second};
    }
    const_iterator& operator++() {
      if (soa_) {
        ++flat_;
      } else {
        ++map_;
      }
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.soa_ ? a.flat_ == b.flat_ : a.map_ == b.map_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class DualMap;
    using MapIt = typename std::map<Key, Value>::const_iterator;
    using FlatIt = typename std::vector<std::pair<Key, Value>>::const_iterator;
    const_iterator(MapIt it) : soa_(false), map_(it) {}
    const_iterator(FlatIt it) : soa_(true), flat_(it) {}
    bool soa_ = false;
    MapIt map_{};
    FlatIt flat_{};
  };

  [[nodiscard]] const_iterator begin() const {
    return soa_ ? const_iterator(flat_.begin()) : const_iterator(map_.begin());
  }
  [[nodiscard]] const_iterator end() const {
    return soa_ ? const_iterator(flat_.end()) : const_iterator(map_.end());
  }

  [[nodiscard]] const Value* find(const Key& key) const {
    if (soa_) return flat_.find(key);
    const auto it = map_.find(key);
    return it != map_.end() ? &it->second : nullptr;
  }
  [[nodiscard]] bool contains(const Key& key) const { return find(key) != nullptr; }
  [[nodiscard]] const Value& at(const Key& key) const {
    const Value* value = find(key);
    assert(value != nullptr && "DualMap::at: missing key");
    return *value;
  }

  void insert_or_assign(const Key& key, Value value) {
    if (soa_) {
      flat_.insert_or_assign(key, std::move(value));
    } else {
      map_.insert_or_assign(key, std::move(value));
    }
  }

  /// Inserts only if absent; returns true when the insertion happened.
  bool try_emplace(const Key& key, Value value) {
    if (soa_) return flat_.try_emplace(key, std::move(value));
    return map_.emplace(key, std::move(value)).second;
  }

  [[nodiscard]] std::size_t size() const { return soa_ ? flat_.size() : map_.size(); }
  [[nodiscard]] bool empty() const { return soa_ ? flat_.empty() : map_.empty(); }
  void clear() {
    if (soa_) {
      flat_.clear();
    } else {
      map_.clear();
    }
  }

 private:
  bool soa_;
  std::map<Key, Value> map_;
  FlatMap<Key, Value> flat_;
};

/// Set with the same representation switch as DualMap.
template <typename Key>
class DualSet {
 public:
  DualSet() : soa_(soa_enabled()) {}

  /// Returns true when `key` was newly inserted.
  bool insert(const Key& key) {
    if (soa_) return flat_.insert(key);
    return set_.insert(key).second;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return soa_ ? flat_.contains(key) : set_.contains(key);
  }
  [[nodiscard]] std::size_t size() const { return soa_ ? flat_.size() : set_.size(); }
  [[nodiscard]] bool empty() const { return soa_ ? flat_.empty() : set_.empty(); }
  void clear() {
    if (soa_) {
      flat_.clear();
    } else {
      set_.clear();
    }
  }

 private:
  bool soa_;
  std::set<Key> set_;
  FlatSet<Key> flat_;
};

}  // namespace snd::util
