// snd::RuntimeConfig: the single resolution point for every SND_* process
// environment variable. Historically each subsystem read its own variable
// with its own parsing rules (util/soa.cpp, crypto/session_cache.cpp,
// obs/config.cpp, runner/trial_runner.cpp, and three bench drivers all
// called getenv); this header replaces those scattered fallbacks with one
// documented struct read once per process.
//
// Variables and their meaning (flags always beat the environment):
//
//   SND_JOBS         worker threads for Monte-Carlo sweeps (--jobs fallback)
//   SND_SOA          "0|off|false" selects the seed std::map/std::set node
//                    state instead of the flat SoA core (default: on)
//   SND_CRYPTO_FAST  "0|off|false" disables the pairwise-key/midstate cache
//                    fast path (default: on)
//   SND_SIMD         "0|off|false" disables the batched/wide execution layer
//                    (multi-buffer SHA-256, strip candidate filtering) and
//                    forces the one-at-a-time seed paths (default: on)
//   SND_LOG_LEVEL    harness log level (--log fallback)
//   SND_TRACE_LEVEL  trace verbosity (--trace fallback)
//   SND_TRACE_JSON   JSON-lines event stream destination (--trace-json)
//   SND_TRACE_BIN    binary .sndtrace destination (--trace-bin)
//   SND_BENCH_DIR    directory BENCH_*.json artifacts are written into
//
// The obs string values stay unparsed here: their vocabulary belongs to
// snd::obs, which validates them in resolve_obs() exactly as it validates
// the corresponding flags. This keeps util at the bottom of the layering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace snd {

struct RuntimeConfig {
  /// SND_JOBS; nullopt when unset or empty.
  std::optional<std::int64_t> jobs;
  /// SND_SOA; defaults to the flat data-oriented core.
  bool soa = true;
  /// SND_CRYPTO_FAST; defaults to the cached fast path.
  bool crypto_fast = true;
  /// SND_SIMD; defaults to the batched/wide hot-loop layer.
  bool simd = true;
  /// SND_LOG_LEVEL / SND_TRACE_LEVEL / SND_TRACE_JSON / SND_TRACE_BIN,
  /// verbatim; parsed and validated by obs::resolve_obs.
  std::optional<std::string> log_level;
  std::optional<std::string> trace_level;
  std::optional<std::string> trace_json;
  std::optional<std::string> trace_bin;
  /// SND_BENCH_DIR; nullopt writes artifacts into the working directory.
  std::optional<std::string> bench_dir;
};

/// The process-wide configuration, resolved from the environment on first
/// use and stable afterwards. Subsystems read this instead of getenv.
[[nodiscard]] const RuntimeConfig& runtime_config();

/// A fresh read of the environment (does not touch the singleton). Tests
/// use this to check parsing without perturbing the process state.
[[nodiscard]] RuntimeConfig load_runtime_config_from_env();

/// Replaces the singleton (tests only). Subsystems that latched a value at
/// static-init time (util::soa_enabled, crypto::fast_path_enabled) keep
/// their own runtime setters; this affects future runtime_config() readers.
void set_runtime_config_for_testing(const RuntimeConfig& config);

/// `bench_dir`-aware artifact path: "<bench_dir>/<filename>" when
/// SND_BENCH_DIR is set and non-empty, `filename` unchanged otherwise.
[[nodiscard]] std::string bench_artifact_path(std::string_view filename);

}  // namespace snd
