// Node identifiers, shared across every layer of the library.
#pragma once

#include <cstdint>

namespace snd {

/// A sensor node identity as it appears on the wire. Identities are what
/// the adversary replicates: several physical radios may claim the same
/// NodeId (replicas of a compromised node).
using NodeId = std::uint32_t;

/// Sentinel for "no node" / broadcast destination.
inline constexpr NodeId kNoNode = 0xffffffffu;

}  // namespace snd
