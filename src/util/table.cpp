#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace snd::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace snd::util
