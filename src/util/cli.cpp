#include "util/cli.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <thread>

#include "util/runtime_config.h"

namespace snd::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    // A repeated flag is ambiguous (which value wins?); the seed parser
    // silently kept the first occurrence. Reject instead of guessing.
    if (const auto it = flags_.find(name); it != flags_.end()) {
      duplicates_.push_back("--" + name + " given more than once ('" + it->second +
                           "' and '" + value + "')");
      continue;
    }
    flags_.emplace(std::move(name), std::move(value));
  }
}

bool Cli::has(std::string_view name) const { return flags_.find(name) != flags_.end(); }

std::string Cli::get(std::string_view name, std::string_view fallback) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second : std::string(fallback);
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + it->first + "=" + it->second + " (expected an integer)");
    return fallback;
  }
  return value;
}

double Cli::get_double(std::string_view name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + it->first + "=" + it->second + " (expected a number)");
    return fallback;
  }
  return value;
}

bool Cli::get_bool(std::string_view name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::validate(std::ostream& err, std::initializer_list<std::string_view> allowed,
                   std::string_view usage) const {
  return validate(err, std::vector<std::string_view>(allowed), usage);
}

bool Cli::validate(std::ostream& err, const std::vector<std::string_view>& allowed,
                   std::string_view usage) const {
  bool ok = true;
  for (const auto& [name, value] : flags_) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      err << program_ << ": unknown flag --" << name << "\n";
      ok = false;
    }
  }
  for (const std::string& duplicate : duplicates_) {
    err << program_ << ": duplicate flag " << duplicate << "\n";
    ok = false;
  }
  for (const std::string& error : errors_) {
    err << program_ << ": invalid value " << error << "\n";
    ok = false;
  }
  if (!ok && !usage.empty()) err << "usage: " << program_ << " " << usage << "\n";
  return ok;
}

std::size_t resolve_jobs(const Cli& cli) {
  std::int64_t jobs = 0;
  if (cli.has("jobs")) {
    jobs = cli.get_int("jobs", 0);
  } else if (const auto env_jobs = runtime_config().jobs) {
    jobs = *env_jobs;
  } else {
    jobs = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  }
  return jobs < 1 ? 1 : static_cast<std::size_t>(jobs);
}

}  // namespace snd::util
