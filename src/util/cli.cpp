#include "util/cli.h"

#include <cstdlib>

namespace snd::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_.emplace(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      flags_.emplace(arg, argv[++i]);
    } else {
      flags_.emplace(arg, "true");
    }
  }
}

bool Cli::has(std::string_view name) const { return flags_.find(name) != flags_.end(); }

std::string Cli::get(std::string_view name, std::string_view fallback) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second : std::string(fallback);
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? std::strtoll(it->second.c_str(), nullptr, 10) : fallback;
}

double Cli::get_double(std::string_view name, double fallback) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

bool Cli::get_bool(std::string_view name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace snd::util
