// Leveled logging with a process-global threshold. By default lines go to
// stderr; obs::apply_obs re-routes them through the active obs::Sink so log
// output, trace output, and JSON serialization share one configuration
// surface (docs/OBSERVABILITY.md).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace snd::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" / "info" / "warn" / "error" / "off".
[[nodiscard]] std::string_view log_level_name(LogLevel level);
/// Inverse of log_level_name; accepts the numeric forms "0".."4" too.
[[nodiscard]] std::optional<LogLevel> log_level_from_name(std::string_view name);

/// Where lines that pass the threshold go. Installing a sink replaces the
/// default stderr output (pass nullptr to restore it). The sink observes
/// only already-filtered lines.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emits one line if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace snd::util
