// Process-wide switch and CPU-feature probe for the batched/wide execution
// layer: the multi-buffer SHA-256 engine (crypto/sha256_mb) and the strip
// candidate filter in sim::Network.
//
// Defaults to on; the environment variable SND_SIMD=0|off|false selects the
// one-at-a-time seed paths at startup (for A/B bit-identity checks and the
// before/after micro benchmarks). Both paths make identical decisions in
// identical order -- CI asserts the fig3 event stream and the fig4 canonical
// report byte-identical across the switch, mirroring SND_CRYPTO_FAST and
// SND_SOA.
//
// The tier probe answers "which wide kernel may run", resolved once from
// CPUID (GCC/Clang __builtin_cpu_supports) on x86-64 and falling back to the
// portable 4-wide scalar kernel elsewhere. Tests and benches can pin a tier
// below the detected one with set_forced_simd_tier(); forcing a tier the CPU
// lacks is ignored (the probe result is a ceiling, never a floor).
//
// Consumers that capture the flag at construction (sim::Network) flip it
// (tests only) before building the object under measurement.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

namespace snd::util {

[[nodiscard]] bool simd_enabled();
void set_simd_enabled(bool enabled);

/// Widest kernel the process may use, ordered so `a < b` means "narrower".
enum class SimdTier : std::uint8_t {
  kScalar = 0,  // portable 4-wide scalar (SWAR-style) kernels
  kSse2 = 1,    // 4 x u32 / 2 x f64 vectors
  kAvx2 = 2,    // 8 x u32 / 4 x f64 vectors
};

/// The CPU's detected ceiling, probed once per process.
[[nodiscard]] SimdTier detected_simd_tier();

/// The tier kernels should dispatch on: min(detected, forced-or-detected).
[[nodiscard]] SimdTier active_simd_tier();

/// Pins dispatch at `tier` (clamped to the detected ceiling) for A/B
/// width-series benchmarks and cross-tier equivalence tests; nullopt
/// restores pure detection.
void set_forced_simd_tier(std::optional<SimdTier> tier);

// Lane load/store helpers. All wide kernels gather lane data from byte
// buffers through these (never by casting byte pointers to wider types), so
// unaligned and aliasing-hostile inputs are defined behavior everywhere the
// sanitizer jobs look.
[[nodiscard]] inline std::uint32_t load_u32_le(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[nodiscard]] inline std::uint32_t load_u32_be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

inline void store_u32_be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] inline double load_f64(const std::uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace snd::util
