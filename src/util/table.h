// Aligned plain-text table printer; every bench binary reports its
// paper-figure series through this so outputs are uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace snd::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snd::util
