#include "util/geometry.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace snd::util {

double Vec2::norm() const { return std::sqrt(norm_squared()); }

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

double distance_squared(Vec2 a, Vec2 b) { return (a - b).norm_squared(); }

double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

bool Circle::contains(Vec2 p, double eps) const {
  return distance(center, p) <= radius + eps;
}

bool Rect::contains(Vec2 p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

double lens_area(double r, double d) {
  if (d >= 2.0 * r) return 0.0;
  if (d <= 0.0) return std::numbers::pi * r * r;
  const double half = d / (2.0 * r);
  return 2.0 * r * r * std::acos(half) - (d / 2.0) * std::sqrt(4.0 * r * r - d * d);
}

double expected_common_neighbors(double density, double radio_range, double c) {
  if (c >= 2.0) return 0.0;
  const double half = c / 2.0;
  const double shape = 2.0 * std::acos(half) - c * std::sqrt(1.0 - half * half);
  return density * radio_range * radio_range * shape - 2.0;
}

namespace {

Circle circle_from(Vec2 a, Vec2 b) {
  const Vec2 center = {(a.x + b.x) / 2, (a.y + b.y) / 2};
  return {center, distance(a, b) / 2};
}

Circle circle_from(Vec2 a, Vec2 b, Vec2 c) {
  // Circumcircle via perpendicular bisector intersection.
  const double bx = b.x - a.x, by = b.y - a.y;
  const double cx = c.x - a.x, cy = c.y - a.y;
  const double d = 2.0 * (bx * cy - by * cx);
  if (std::abs(d) < 1e-12) {
    // Collinear: fall back to the widest pair.
    Circle best = circle_from(a, b);
    for (const Circle& candidate : {circle_from(a, c), circle_from(b, c)}) {
      if (candidate.radius > best.radius) best = candidate;
    }
    return best;
  }
  const double ux = (cy * (bx * bx + by * by) - by * (cx * cx + cy * cy)) / d;
  const double uy = (bx * (cx * cx + cy * cy) - cx * (bx * bx + by * by)) / d;
  const Vec2 center = {a.x + ux, a.y + uy};
  return {center, distance(center, a)};
}

Circle trivial(std::span<const Vec2> boundary) {
  switch (boundary.size()) {
    case 0:
      return {{0, 0}, 0};
    case 1:
      return {boundary[0], 0};
    case 2:
      return circle_from(boundary[0], boundary[1]);
    default:
      return circle_from(boundary[0], boundary[1], boundary[2]);
  }
}

// Welzl's algorithm, iterative move-to-front variant.
Circle welzl(std::vector<Vec2>& pts, std::vector<Vec2>& boundary, std::size_t n) {
  if (n == 0 || boundary.size() == 3) return trivial(boundary);
  Circle c = welzl(pts, boundary, n - 1);
  if (c.contains(pts[n - 1])) return c;
  boundary.push_back(pts[n - 1]);
  c = welzl(pts, boundary, n - 1);
  boundary.pop_back();
  return c;
}

}  // namespace

namespace {

// Area of circle (origin, r) ∩ [0,x] x [0,y] for x, y >= 0.
double quadrant_area(double x, double y, double r) {
  x = std::min(x, r);
  y = std::min(y, r);
  if (x <= 0.0 || y <= 0.0) return 0.0;
  // G(t) = integral of sqrt(r^2 - t^2) dt.
  const auto g = [r](double t) {
    return (t * std::sqrt(std::max(0.0, r * r - t * t)) + r * r * std::asin(t / r)) / 2.0;
  };
  // For t <= t0 the chord sqrt(r^2 - t^2) exceeds y (height capped at y).
  const double t0 = std::min(x, std::sqrt(std::max(0.0, r * r - y * y)));
  return y * t0 + g(x) - g(t0);
}

// Signed quadrant area: g(x, y) with the usual inclusion-exclusion signs.
double signed_quadrant_area(double x, double y, double r) {
  const double sign = (x < 0.0 ? -1.0 : 1.0) * (y < 0.0 ? -1.0 : 1.0);
  return sign * quadrant_area(std::abs(x), std::abs(y), r);
}

}  // namespace

double circle_rect_intersection_area(const Circle& circle, const Rect& rect) {
  const double r = circle.radius;
  if (r <= 0.0) return 0.0;
  const double x1 = rect.lo.x - circle.center.x;
  const double x2 = rect.hi.x - circle.center.x;
  const double y1 = rect.lo.y - circle.center.y;
  const double y2 = rect.hi.y - circle.center.y;
  return signed_quadrant_area(x2, y2, r) - signed_quadrant_area(x1, y2, r) -
         signed_quadrant_area(x2, y1, r) + signed_quadrant_area(x1, y1, r);
}

Circle minimum_enclosing_circle(std::span<const Vec2> points) {
  std::vector<Vec2> pts(points.begin(), points.end());
  // A deterministic shuffle keeps expected O(n) behaviour without pulling in
  // a seeded RNG dependency; inputs here are small (neighbor sets).
  for (std::size_t i = pts.size(); i > 1; --i) {
    std::swap(pts[i - 1], pts[(i * 2654435761u) % i]);
  }
  std::vector<Vec2> boundary;
  return welzl(pts, boundary, pts.size());
}

}  // namespace snd::util
