// Small statistics toolkit used by the bench harnesses: running moments,
// percentiles, and multi-seed aggregation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace snd::util {

/// Streaming mean/variance via Welford's algorithm; O(1) space.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stdev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

  /// "mean ± stdev" with the given precision, for table cells.
  [[nodiscard]] std::string summary(int precision = 3) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with order statistics (stores all values).
class Series {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stdev() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace snd::util
