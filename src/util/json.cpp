#include "util/json.h"

#include <cerrno>
#include <cstdlib>

namespace snd::util {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue value;
    if (!parse_value(value, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // \uXXXX: decode the code unit; non-ASCII becomes UTF-8. The
            // harness never writes surrogate pairs, so lone surrogates are
            // passed through as-is rather than rejected.
            if (pos_ + 4 > text_.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      out += c;
    }
    return false;  // unterminated
  }

  bool parse_number(std::string& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      digits = true;
    }
    if (!digits) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      bool frac = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac = true;
      }
      if (!frac) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      bool exp = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp = true;
      }
      if (!exp) return false;
    }
    out.assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type_ = JsonValue::Type::kObject;
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue value;
        if (!parse_value(value, depth + 1)) return false;
        out.members_.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.type_ = JsonValue::Type::kArray;
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        JsonValue value;
        if (!parse_value(value, depth + 1)) return false;
        out.items_.push_back(std::move(value));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.type_ = JsonValue::Type::kString;
      return parse_string(out.scalar_);
    }
    if (c == 't') {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type_ = JsonValue::Type::kNull;
      return literal("null");
    }
    out.type_ = JsonValue::Type::kNumber;
    return parse_number(out.scalar_);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

std::optional<bool> JsonValue::as_bool() const {
  if (type_ != Type::kBool) return std::nullopt;
  return bool_;
}

std::optional<double> JsonValue::as_double() const {
  if (type_ != Type::kNumber) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (type_ != Type::kNumber) return std::nullopt;
  if (scalar_.empty() || scalar_[0] == '-') return std::nullopt;
  if (scalar_.find_first_of(".eE") != std::string::npos) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<std::int64_t> JsonValue::as_i64() const {
  if (type_ != Type::kNumber) return std::nullopt;
  if (scalar_.find_first_of(".eE") != std::string::npos) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

std::optional<std::string_view> JsonValue::as_string() const {
  if (type_ != Type::kString) return std::nullopt;
  return std::string_view(scalar_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<std::uint64_t> JsonValue::u64(std::string_view key) const {
  const JsonValue* v = find(key);
  return v ? v->as_u64() : std::nullopt;
}

std::optional<std::int64_t> JsonValue::i64(std::string_view key) const {
  const JsonValue* v = find(key);
  return v ? v->as_i64() : std::nullopt;
}

std::optional<double> JsonValue::number(std::string_view key) const {
  const JsonValue* v = find(key);
  return v ? v->as_double() : std::nullopt;
}

std::optional<std::string_view> JsonValue::string(std::string_view key) const {
  const JsonValue* v = find(key);
  return v ? v->as_string() : std::nullopt;
}

std::optional<bool> JsonValue::boolean(std::string_view key) const {
  const JsonValue* v = find(key);
  return v ? v->as_bool() : std::nullopt;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace snd::util
