// Process-wide switch for the data-oriented (struct-of-arrays) state
// layout: flat sorted arrays instead of per-node std::map/std::set, packet
// pooling in sim::Network, and the scheduler's windowed-bitset cancel set.
//
// Defaults to on; the environment variable SND_SOA=0|off|false selects the
// seed object-per-node layout at startup (for A/B bit-identity checks and
// the before/after scale benchmarks). Both layouts make identical decisions
// in identical order -- CI asserts the fig3 event stream and the fig4
// canonical report byte-identical across the switch, mirroring the
// SND_CRYPTO_FAST gate.
//
// Containers capture the flag at construction, so flip it (tests only)
// before building the Network/SndDeployment under measurement.
#pragma once

namespace snd::util {

[[nodiscard]] bool soa_enabled();
void set_soa_enabled(bool enabled);

}  // namespace snd::util
