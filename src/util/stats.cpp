#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace snd::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 1 ? stdev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

std::string RunningStats::summary(int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean(), precision, stdev());
  return buf;
}

double Series::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Series::stdev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Series::percentile(double p) const {
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace snd::util
