// Seeded, serializable fault schedules.
//
// A FaultPlan is pure data: a seed plus an ordered list of FaultActions.
// Applying one to a run (fault::Injector + core::SndDeployment) perturbs
// the simulation deterministically -- the same (plan, deployment seed) pair
// always reproduces the same run, which is what lets the property-based
// harness shrink a failing plan to a minimal action subset and replay a
// FAILCASE artifact bit-identically.
//
// Plans round-trip through JSON (to_json / parse / save / load). The
// serialized form omits fields left at their defaults, so a
// parse -> to_json cycle is canonicalizing and idempotent.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/driver_spec.h"
#include "util/ids.h"

namespace snd::util {
class JsonValue;
}

namespace snd::fault {

/// What one action does. Delivery actions (kDrop..kCorrupt, kBurst) fire
/// per matching delivery candidate inside sim::Network; lifecycle actions
/// (kCrash, kReboot) fire once at an absolute time via the deployment
/// layer; kSkew arms a per-node clock-drift multiplier for the whole run.
enum class ActionKind : std::uint8_t {
  kDrop = 0,
  kDuplicate,
  kDelay,
  kCorrupt,
  kCrash,
  kReboot,
  kSkew,
  kBurst,
};
inline constexpr std::size_t kActionKindCount = static_cast<std::size_t>(ActionKind::kBurst) + 1;

[[nodiscard]] std::string_view action_kind_name(ActionKind kind);
[[nodiscard]] std::optional<ActionKind> action_kind_from_name(std::string_view name);

/// How a kCorrupt action mutates the in-flight copy.
enum class CorruptMode : std::uint8_t {
  kBitFlip = 0,  // flip one payload bit (or the type byte when empty)
  kTruncate,     // cut the payload short
};

/// Which delivery candidates an action applies to. All criteria are ANDed;
/// defaults match everything. `probability` adds a per-candidate Bernoulli
/// draw from the injector's own RNG and `max_hits` retires the action after
/// it has fired that many times.
struct Match {
  NodeId src = kNoNode;  ///< actual sender identity; kNoNode = any
  NodeId dst = kNoNode;  ///< receiver identity; kNoNode = any
  /// obs::Phase index the transmission is charged to; -1 = any.
  std::int16_t phase = -1;
  /// Half-open simulation-time window [from_ns, until_ns).
  std::int64_t from_ns = 0;
  std::int64_t until_ns = std::numeric_limits<std::int64_t>::max();
  double probability = 1.0;
  std::uint64_t max_hits = std::numeric_limits<std::uint64_t>::max();

  /// The deterministic criteria (ids, phase, window). probability/max_hits
  /// are stateful and live in the Injector.
  [[nodiscard]] bool covers(NodeId from, NodeId to, std::uint8_t tx_phase,
                            std::int64_t t_ns) const;
};

struct FaultAction {
  ActionKind kind = ActionKind::kDrop;
  Match match;

  // -- kDuplicate -------------------------------------------------------
  std::uint32_t copies = 1;  ///< extra copies per matching delivery

  /// kDelay: extra latency per matching delivery; kDuplicate: spacing
  /// between consecutive extra copies.
  std::int64_t delay_ns = 1'000'000;  // 1 ms

  // -- kCorrupt ---------------------------------------------------------
  CorruptMode corrupt_mode = CorruptMode::kBitFlip;

  // -- kCrash / kReboot / kSkew ----------------------------------------
  NodeId node = kNoNode;   ///< target identity
  std::int64_t at_ns = 0;  ///< absolute fire time (crash/reboot)
  double drift = 1.0;      ///< skew: local timer multiplier (1.0 = none)

  [[nodiscard]] bool is_lifecycle() const {
    return kind == ActionKind::kCrash || kind == ActionKind::kReboot;
  }

  [[nodiscard]] std::string to_json() const;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }

  [[nodiscard]] std::string to_json() const;

  /// Parses the canonical JSON form; nullopt on syntax errors, unknown
  /// kinds, or out-of-range field values.
  [[nodiscard]] static std::optional<FaultPlan> parse(std::string_view json);
  /// Same, from an already-parsed JSON object (e.g. the "plan" member of a
  /// FAILCASE artifact).
  [[nodiscard]] static std::optional<FaultPlan> from_value(const util::JsonValue& value);

  /// File round-trip helpers. save() returns false on I/O errors; load()
  /// nullopt on I/O or parse errors.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<FaultPlan> load(const std::string& path);
};

/// The shared --fault-plan surface as a DriverSpec flag group: loads the
/// plan file during parse() into `*out` (nullopt when the flag is absent);
/// a missing or malformed file is recorded as a validation error.
[[nodiscard]] util::cli::FlagGroup plan_flag_group(std::optional<FaultPlan>* out);

}  // namespace snd::fault
