#include "fault/injector.h"

#include <atomic>

namespace snd::fault {

namespace {

std::atomic<PlantedBug> g_planted_bug{PlantedBug::kNone};

}  // namespace

void set_planted_bug(PlantedBug bug) { g_planted_bug.store(bug, std::memory_order_relaxed); }

PlantedBug planted_bug() { return g_planted_bug.load(std::memory_order_relaxed); }

std::optional<PlantedBug> planted_bug_from_name(std::string_view name) {
  if (name == "none") return PlantedBug::kNone;
  if (name == "uncounted_drop") return PlantedBug::kUncountedDrop;
  if (name == "verify_bypass") return PlantedBug::kVerifyBypass;
  if (name == "replay_window_bypass") return PlantedBug::kReplayWindowBypass;
  return std::nullopt;
}

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {
  hits_.assign(plan_.actions.size(), 0);
  for (const FaultAction& action : plan_.actions) {
    if (action.is_lifecycle()) {
      lifecycle_.push_back(Lifecycle{.kind = action.kind, .node = action.node,
                                     .at_ns = action.at_ns});
    } else if (action.kind == ActionKind::kSkew) {
      // Last skew action for a node wins (plans rarely stack them).
      drift_[action.node] = action.drift;
    }
  }
}

sim::FaultDecision Injector::on_delivery(NodeId src, NodeId dst, obs::Phase phase,
                                         sim::Time now) {
  sim::FaultDecision decision;
  const auto phase_code = static_cast<std::uint8_t>(phase);
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& action = plan_.actions[i];
    if (action.is_lifecycle() || action.kind == ActionKind::kSkew) continue;
    if (hits_[i] >= action.match.max_hits) continue;
    if (!action.match.covers(src, dst, phase_code, now.ns())) continue;
    // The Bernoulli draw is consumed only for actions whose deterministic
    // criteria matched, so unrelated traffic never shifts the stream.
    if (action.match.probability < 1.0 && !rng_.chance(action.match.probability)) continue;
    ++hits_[i];
    switch (action.kind) {
      case ActionKind::kDrop:
      case ActionKind::kBurst:
        decision.drop = true;
        decision.drop_kind = action.kind == ActionKind::kBurst ? obs::InjectKind::kBurst
                                                               : obs::InjectKind::kDrop;
        if (planted_bug() != PlantedBug::kUncountedDrop) {
          ++(action.kind == ActionKind::kBurst ? counters_.bursts : counters_.drops);
        }
        // A destroyed copy cannot also be duplicated/delayed/corrupted.
        return decision;
      case ActionKind::kDuplicate:
        decision.copies += action.copies;
        decision.copy_spacing = sim::Time::nanoseconds(action.delay_ns);
        counters_.extra_copies += action.copies;
        break;
      case ActionKind::kDelay:
        decision.extra_delay += sim::Time::nanoseconds(action.delay_ns);
        ++counters_.delays;
        break;
      case ActionKind::kCorrupt:
        if (!decision.corrupt) ++counters_.corrupts;
        decision.corrupt = true;
        corrupt_mode_ = action.corrupt_mode;
        break;
      case ActionKind::kCrash:
      case ActionKind::kReboot:
      case ActionKind::kSkew:
        break;  // unreachable; filtered above
    }
  }
  return decision;
}

void Injector::corrupt_packet(sim::Packet& packet) {
  if (corrupt_mode_ == CorruptMode::kTruncate && !packet.payload.empty()) {
    // Cut the payload anywhere, including to empty.
    packet.payload.resize(
        static_cast<std::size_t>(rng_.uniform_int(static_cast<std::uint64_t>(packet.payload.size()))));
    return;
  }
  if (packet.payload.empty()) {
    // Nothing to mutate in the body; scramble the type discriminator so the
    // corruption is still observable end to end.
    packet.type ^= static_cast<std::uint8_t>(1 + rng_.uniform_int(std::uint64_t{255}));
    return;
  }
  const std::uint64_t bit = rng_.uniform_int(static_cast<std::uint64_t>(packet.payload.size() * 8));
  packet.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

double Injector::timer_drift(NodeId node) const {
  const auto it = drift_.find(node);
  return it != drift_.end() ? it->second : 1.0;
}

}  // namespace snd::fault
