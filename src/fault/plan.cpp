#include "fault/plan.h"

#include <array>
#include <cstdio>

#include "obs/event.h"
#include "util/json.h"

namespace snd::fault {

namespace {

constexpr std::array<std::string_view, kActionKindCount> kActionKindNames = {
    "drop", "duplicate", "delay", "corrupt", "crash", "reboot", "skew", "burst",
};

constexpr std::int64_t kMaxI64 = std::numeric_limits<std::int64_t>::max();
constexpr std::uint64_t kMaxU64 = std::numeric_limits<std::uint64_t>::max();

void append_number(std::string& out, std::string_view key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void append_number(std::string& out, std::string_view key, std::int64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void append_double(std::string& out, std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += ",\"";
  out += key;
  out += "\":";
  out += buf;
}

}  // namespace

std::string_view action_kind_name(ActionKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kActionKindNames.size() ? kActionKindNames[i] : std::string_view("?");
}

std::optional<ActionKind> action_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kActionKindNames.size(); ++i) {
    if (kActionKindNames[i] == name) return static_cast<ActionKind>(i);
  }
  return std::nullopt;
}

bool Match::covers(NodeId from, NodeId to, std::uint8_t tx_phase, std::int64_t t_ns) const {
  if (src != kNoNode && src != from) return false;
  if (dst != kNoNode && dst != to) return false;
  if (phase >= 0 && phase != static_cast<std::int16_t>(tx_phase)) return false;
  return t_ns >= from_ns && t_ns < until_ns;
}

std::string FaultAction::to_json() const {
  std::string out = "{\"kind\":\"";
  out += action_kind_name(kind);
  out += "\"";
  if (match.src != kNoNode) append_number(out, "src", static_cast<std::uint64_t>(match.src));
  if (match.dst != kNoNode) append_number(out, "dst", static_cast<std::uint64_t>(match.dst));
  if (match.phase >= 0 && match.phase < static_cast<std::int16_t>(obs::kPhaseCount)) {
    out += ",\"phase\":\"";
    out += obs::phase_name(static_cast<obs::Phase>(match.phase));
    out += "\"";
  }
  if (match.from_ns != 0) append_number(out, "from_ns", match.from_ns);
  if (match.until_ns != kMaxI64) append_number(out, "until_ns", match.until_ns);
  if (match.probability != 1.0) append_double(out, "p", match.probability);
  if (match.max_hits != kMaxU64) append_number(out, "max_hits", match.max_hits);

  if (kind == ActionKind::kDuplicate && copies != 1) {
    append_number(out, "copies", static_cast<std::uint64_t>(copies));
  }
  if ((kind == ActionKind::kDuplicate || kind == ActionKind::kDelay) && delay_ns != 1'000'000) {
    append_number(out, "delay_ns", delay_ns);
  }
  if (kind == ActionKind::kCorrupt && corrupt_mode == CorruptMode::kTruncate) {
    out += ",\"mode\":\"truncate\"";
  }
  if (node != kNoNode) append_number(out, "node", static_cast<std::uint64_t>(node));
  if (is_lifecycle() && at_ns != 0) append_number(out, "at_ns", at_ns);
  if (kind == ActionKind::kSkew && drift != 1.0) append_double(out, "drift", drift);
  out += "}";
  return out;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed) + ",\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ",";
    out += actions[i].to_json();
  }
  out += "]}";
  return out;
}

namespace {

std::optional<FaultAction> parse_action(const util::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  const auto kind_name = v.string("kind");
  if (!kind_name) return std::nullopt;
  const auto kind = action_kind_from_name(*kind_name);
  if (!kind) return std::nullopt;

  FaultAction action;
  action.kind = *kind;
  if (const auto src = v.u64("src")) {
    if (*src > kNoNode) return std::nullopt;
    action.match.src = static_cast<NodeId>(*src);
  }
  if (const auto dst = v.u64("dst")) {
    if (*dst > kNoNode) return std::nullopt;
    action.match.dst = static_cast<NodeId>(*dst);
  }
  if (const auto phase = v.string("phase")) {
    const auto parsed = obs::phase_from_name(*phase);
    if (!parsed) return std::nullopt;
    action.match.phase = static_cast<std::int16_t>(*parsed);
  }
  if (const auto from_ns = v.i64("from_ns")) action.match.from_ns = *from_ns;
  if (const auto until_ns = v.i64("until_ns")) action.match.until_ns = *until_ns;
  if (const auto p = v.number("p")) {
    if (*p < 0.0 || *p > 1.0) return std::nullopt;
    action.match.probability = *p;
  }
  if (const auto max_hits = v.u64("max_hits")) action.match.max_hits = *max_hits;
  if (const auto copies = v.u64("copies")) {
    if (*copies == 0 || *copies > 64) return std::nullopt;  // duplication sanity bound
    action.copies = static_cast<std::uint32_t>(*copies);
  }
  if (const auto delay_ns = v.i64("delay_ns")) {
    if (*delay_ns < 0) return std::nullopt;
    action.delay_ns = *delay_ns;
  }
  if (const auto mode = v.string("mode")) {
    if (*mode == "bitflip") {
      action.corrupt_mode = CorruptMode::kBitFlip;
    } else if (*mode == "truncate") {
      action.corrupt_mode = CorruptMode::kTruncate;
    } else {
      return std::nullopt;
    }
  }
  if (const auto node = v.u64("node")) {
    if (*node > kNoNode) return std::nullopt;
    action.node = static_cast<NodeId>(*node);
  }
  if (const auto at_ns = v.i64("at_ns")) {
    if (*at_ns < 0) return std::nullopt;
    action.at_ns = *at_ns;
  }
  if (const auto drift = v.number("drift")) {
    // A non-positive timer multiplier would schedule events in the past.
    if (*drift <= 0.0) return std::nullopt;
    action.drift = *drift;
  }
  // Lifecycle and skew actions need a concrete target.
  if ((action.is_lifecycle() || action.kind == ActionKind::kSkew) && action.node == kNoNode) {
    return std::nullopt;
  }
  return action;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view json) {
  const auto doc = util::JsonValue::parse(json);
  if (!doc) return std::nullopt;
  return from_value(*doc);
}

std::optional<FaultPlan> FaultPlan::from_value(const util::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  FaultPlan plan;
  if (const auto seed = doc.u64("seed")) plan.seed = *seed;
  const util::JsonValue* actions = doc.find("actions");
  if (actions != nullptr) {
    if (!actions->is_array()) return std::nullopt;
    for (const util::JsonValue& entry : actions->items()) {
      auto action = parse_action(entry);
      if (!action) return std::nullopt;
      plan.actions.push_back(*action);
    }
  }
  return plan;
}

bool FaultPlan::save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
                  std::fputc('\n', file) != EOF;
  return std::fclose(file) == 0 && ok;
}

util::cli::FlagGroup plan_flag_group(std::optional<FaultPlan>* out) {
  util::cli::FlagGroup group;
  group.title = "Fault injection";
  util::cli::FlagDef def;
  def.name = "fault-plan";
  def.type = util::cli::FlagType::kString;
  def.value_name = "PATH";
  def.help = "inject the channel faults described by PATH (fault::FaultPlan JSON) "
             "into every trial";
  group.flags.push_back(std::move(def));
  group.resolve = [out](const util::Cli& cli) {
    out->reset();
    const std::string path = cli.get("fault-plan", "");
    if (path.empty()) return;
    *out = FaultPlan::load(path);
    if (!*out) {
      cli.record_error("--fault-plan=" + path + " (cannot load plan file)");
    }
  };
  return group;
}

std::optional<FaultPlan> FaultPlan::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return parse(text);
}

}  // namespace snd::fault
