// Executes a FaultPlan against one simulated run.
//
// The Injector is the sim::FaultHook implementation: sim::Network consults
// it per delivery candidate, core::SndDeployment schedules its lifecycle
// actions (crash/reboot) and routes clock skew into protocol timers. All
// randomness comes from the injector's own RNG seeded by the plan, so the
// channel's draw sequence is untouched and a (plan, run seed) pair is fully
// deterministic.
//
// The injector also keeps authoritative counts of everything it did. The
// proptest conservation oracle cross-checks these against the simulator's
// metrics (e.g. metrics drops[injected] == injector drops+bursts); a
// test-only planted bug (set_planted_bug) deliberately corrupts this
// bookkeeping so the harness can prove its oracles and shrinker work.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/plan.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace snd::fault {

/// Test-only deliberate defects, armed process-wide via set_planted_bug.
/// kNone in production; the proptest harness uses the others to verify that
/// its oracles fire and its shrinker converges.
enum class PlantedBug : std::uint8_t {
  kNone = 0,
  /// Injected drops are destroyed but not counted in the injector's own
  /// bookkeeping -- the metrics-vs-injector conservation oracle must fire.
  kUncountedDrop,
  /// Direct verification silently accepts everything (the deployment swaps
  /// in the naive verifier while the observation still claims verification
  /// is on) -- the relay.bounded / sybil.bounded oracles must fire.
  kVerifyBypass,
  /// Messenger sliding replay windows accept duplicate nonces instead of
  /// rejecting them -- the replay.never_accepted oracle must fire.
  kReplayWindowBypass,
};

void set_planted_bug(PlantedBug bug);
[[nodiscard]] PlantedBug planted_bug();
/// Parses "none" / "uncounted_drop" / "verify_bypass" / "replay_window_bypass"
/// (the --plant flag vocabulary).
[[nodiscard]] std::optional<PlantedBug> planted_bug_from_name(std::string_view name);

class Injector final : public sim::FaultHook {
 public:
  explicit Injector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // -- sim::FaultHook ----------------------------------------------------
  sim::FaultDecision on_delivery(NodeId src, NodeId dst, obs::Phase phase,
                                 sim::Time now) override;
  void corrupt_packet(sim::Packet& packet) override;
  [[nodiscard]] double timer_drift(NodeId node) const override;
  [[nodiscard]] bool skews_timers() const override { return !drift_.empty(); }

  // -- Lifecycle actions (deployment layer) ------------------------------
  struct Lifecycle {
    ActionKind kind = ActionKind::kCrash;  // kCrash or kReboot
    NodeId node = kNoNode;
    std::int64_t at_ns = 0;
  };
  /// Crash/reboot actions in plan order; the deployment schedules them.
  [[nodiscard]] const std::vector<Lifecycle>& lifecycle_actions() const { return lifecycle_; }

  // -- Authoritative accounting ------------------------------------------
  struct Counters {
    std::uint64_t drops = 0;        ///< candidates destroyed by kDrop
    std::uint64_t bursts = 0;       ///< candidates destroyed by kBurst
    std::uint64_t extra_copies = 0; ///< duplicate copies scheduled
    std::uint64_t delays = 0;       ///< deliveries postponed
    std::uint64_t corrupts = 0;     ///< payloads mutated
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  /// Mode of the most recent matching kCorrupt action; consumed by the
  /// corrupt_packet call the Network makes right after on_delivery.
  CorruptMode corrupt_mode_ = CorruptMode::kBitFlip;
  /// Per-action hit counts (max_hits retirement), parallel to plan_.actions.
  std::vector<std::uint64_t> hits_;
  std::vector<Lifecycle> lifecycle_;
  std::unordered_map<NodeId, double> drift_;
  Counters counters_;
};

}  // namespace snd::fault
