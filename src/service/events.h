// Topology mutation events the validation service ingests.
//
// The service's world changes in exactly three ways, mirroring the paper's
// deployment lifecycle: a node is deployed (Theorem 4's incremental
// deployment), an existing node's binding records are re-established at a
// new position (a legitimate re-deployment / record update), or a node is
// revoked (compromise detected, its records withdrawn). Each event is pure
// data so sequences serialize into traces, replay deterministically, and
// translate 1:1 onto the wire protocol's kEvent frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "util/geometry.h"
#include "util/ids.h"
#include "util/rng.h"

namespace snd::service {

enum class EventKind : std::uint8_t {
  kDeploy = 0,  ///< new node appears at `position`
  kUpdate = 1,  ///< existing node re-binds at `position`
  kRevoke = 2,  ///< node removed (position ignored)
};

[[nodiscard]] std::string_view event_kind_name(EventKind kind);

struct TopologyEvent {
  EventKind kind = EventKind::kDeploy;
  NodeId node = kNoNode;
  util::Vec2 position;

  [[nodiscard]] static TopologyEvent deploy(NodeId node, util::Vec2 position) {
    return {EventKind::kDeploy, node, position};
  }
  [[nodiscard]] static TopologyEvent update(NodeId node, util::Vec2 position) {
    return {EventKind::kUpdate, node, position};
  }
  [[nodiscard]] static TopologyEvent revoke(NodeId node) {
    return {EventKind::kRevoke, node, {}};
  }

  friend bool operator==(const TopologyEvent& a, const TopologyEvent& b) {
    return a.kind == b.kind && a.node == b.node && a.position == b.position;
  }
};

/// A seeded random event sequence over `field`: each step deploys a fresh
/// node, moves a live one, or revokes a live one (weights 2:1:1), starting
/// from the live set `initial`. Node IDs for deploys continue after the
/// largest initial ID. Drives the equivalence suite and the load generator.
[[nodiscard]] std::vector<TopologyEvent> random_events(std::size_t count,
                                                       const util::Rect& field,
                                                       std::vector<NodeId> initial,
                                                       std::uint64_t seed);

/// Projects a FaultPlan's lifecycle actions onto service events: kCrash
/// becomes a revocation (the compromised/failed node's records are
/// withdrawn) and kReboot a deployment at `reboot_position(node)`. Delivery
/// actions (drops, delays, ...) have no topology-level effect and are
/// skipped. Actions are emitted in at_ns order, ties in plan order.
[[nodiscard]] std::vector<TopologyEvent> events_from_fault_plan(
    const fault::FaultPlan& plan, const util::Rect& field);

}  // namespace snd::service
