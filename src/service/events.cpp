#include "service/events.h"

#include <algorithm>

namespace snd::service {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kDeploy:
      return "deploy";
    case EventKind::kUpdate:
      return "update";
    case EventKind::kRevoke:
      return "revoke";
  }
  return "?";
}

std::vector<TopologyEvent> random_events(std::size_t count, const util::Rect& field,
                                         std::vector<NodeId> initial, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<NodeId> live = std::move(initial);
  std::sort(live.begin(), live.end());
  NodeId next_id = live.empty() ? 0 : live.back() + 1;

  std::vector<TopologyEvent> events;
  events.reserve(count);
  const auto random_position = [&rng, &field]() {
    return util::Vec2{rng.uniform(field.lo.x, field.hi.x),
                      rng.uniform(field.lo.y, field.hi.y)};
  };
  for (std::size_t i = 0; i < count; ++i) {
    // 2:1:1 deploy:update:revoke, degrading to deploy while nothing is live
    // so the sequence never references a node that does not exist.
    const std::uint64_t roll = rng.uniform_int(std::uint64_t{4});
    if (roll < 2 || live.empty()) {
      events.push_back(TopologyEvent::deploy(next_id, random_position()));
      live.push_back(next_id);
      ++next_id;
    } else if (roll == 2) {
      const std::size_t pick = rng.uniform_int(static_cast<std::uint64_t>(live.size()));
      events.push_back(TopologyEvent::update(live[pick], random_position()));
    } else {
      const std::size_t pick = rng.uniform_int(static_cast<std::uint64_t>(live.size()));
      events.push_back(TopologyEvent::revoke(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return events;
}

std::vector<TopologyEvent> events_from_fault_plan(const fault::FaultPlan& plan,
                                                  const util::Rect& field) {
  struct Timed {
    std::int64_t at_ns;
    std::size_t order;
    TopologyEvent event;
  };
  std::vector<Timed> timed;
  // The reboot position is derived from the plan seed and the node identity,
  // so the projection is deterministic per (plan, node) without consuming a
  // shared RNG stream (action order must not change positions).
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    const fault::FaultAction& action = plan.actions[i];
    if (!action.is_lifecycle() || action.node == kNoNode) continue;
    if (action.kind == fault::ActionKind::kCrash) {
      timed.push_back({action.at_ns, i, TopologyEvent::revoke(action.node)});
    } else {
      util::Rng rng(util::derive_seed(plan.seed, action.node));
      const util::Vec2 position{rng.uniform(field.lo.x, field.hi.x),
                                rng.uniform(field.lo.y, field.hi.y)};
      timed.push_back({action.at_ns, i, TopologyEvent::deploy(action.node, position)});
    }
  }
  std::stable_sort(timed.begin(), timed.end(), [](const Timed& a, const Timed& b) {
    return a.at_ns != b.at_ns ? a.at_ns < b.at_ns : a.order < b.order;
  });
  std::vector<TopologyEvent> events;
  events.reserve(timed.size());
  for (Timed& t : timed) events.push_back(t.event);
  return events;
}

}  // namespace snd::service
