#include "service/wire.h"

#include <bit>
#include <string>

namespace snd::service::wire {

namespace {

void put_error(util::Bytes& out, const std::string& message) {
  util::put_u8(out, kError);
  util::put_var_bytes(out, std::span<const std::uint8_t>(
                               reinterpret_cast<const std::uint8_t*>(message.data()),
                               message.size()));
}

}  // namespace

util::Bytes encode_query(NodeId u, NodeId v) {
  util::Bytes payload;
  util::put_u8(payload, kQuery);
  util::put_u32(payload, u);
  util::put_u32(payload, v);
  return payload;
}

util::Bytes encode_batch_query(std::span<const std::pair<NodeId, NodeId>> pairs) {
  util::Bytes payload;
  util::put_u8(payload, kBatchQuery);
  util::put_u32(payload, static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [u, v] : pairs) {
    util::put_u32(payload, u);
    util::put_u32(payload, v);
  }
  return payload;
}

util::Bytes encode_event(const TopologyEvent& event) {
  util::Bytes payload;
  util::put_u8(payload, kEvent);
  util::put_u8(payload, static_cast<std::uint8_t>(event.kind));
  util::put_u32(payload, event.node);
  util::put_u64(payload, std::bit_cast<std::uint64_t>(event.position.x));
  util::put_u64(payload, std::bit_cast<std::uint64_t>(event.position.y));
  return payload;
}

util::Bytes encode_stats() { return {kStats}; }
util::Bytes encode_digest() { return {kDigest}; }
util::Bytes encode_shutdown() { return {kShutdown}; }

util::Bytes frame(const util::Bytes& payload) {
  util::Bytes framed;
  framed.reserve(payload.size() + 4);
  util::put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  util::put_bytes(framed, payload);
  return framed;
}

bool handle_request(ValidationService& service, std::span<const std::uint8_t> payload,
                    util::Bytes& out) {
  util::ByteReader reader(payload);
  const auto opcode = reader.u8();
  if (!opcode) {
    put_error(out, "empty request");
    return true;
  }
  switch (*opcode) {
    case kQuery: {
      const auto u = reader.u32();
      const auto v = reader.u32();
      if (!v || !reader.exhausted()) {
        put_error(out, "query: expected u32 u, u32 v");
        return true;
      }
      const auto snapshot = service.snapshot();
      util::put_u8(out, kOk);
      util::put_u8(out, snapshot->validate(*u, *v) ? 1 : 0);
      util::put_u64(out, snapshot->epoch());
      return true;
    }
    case kBatchQuery: {
      const auto count = reader.u32();
      if (!count || *count * 8ull != reader.remaining()) {
        put_error(out, "batch: expected u32 n then n pairs");
        return true;
      }
      const auto snapshot = service.snapshot();
      util::put_u8(out, kOk);
      util::put_u64(out, snapshot->epoch());
      util::put_u32(out, *count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto u = reader.u32();
        const auto v = reader.u32();
        util::put_u8(out, snapshot->validate(*u, *v) ? 1 : 0);
      }
      return true;
    }
    case kEvent: {
      const auto kind = reader.u8();
      const auto node = reader.u32();
      const auto x_bits = reader.u64();
      const auto y_bits = reader.u64();
      if (!y_bits || !reader.exhausted() || *kind > 2) {
        put_error(out, "event: expected u8 kind<=2, u32 node, u64 x, u64 y");
        return true;
      }
      TopologyEvent event;
      event.kind = static_cast<EventKind>(*kind);
      event.node = *node;
      event.position = {std::bit_cast<double>(*x_bits), std::bit_cast<double>(*y_bits)};
      const ApplyResult result = service.apply(event);
      if (!result.ok) {
        put_error(out, result.error);
        return true;
      }
      util::put_u8(out, kOk);
      util::put_u64(out, service.snapshot()->epoch());
      return true;
    }
    case kStats: {
      const auto snapshot = service.snapshot();
      util::put_u8(out, kOk);
      util::put_u64(out, snapshot->epoch());
      util::put_u64(out, snapshot->node_count());
      util::put_u64(out, snapshot->validated_edge_count());
      util::put_u64(out, service.events_applied());
      return true;
    }
    case kDigest: {
      const auto snapshot = service.snapshot();
      util::put_u8(out, kOk);
      util::put_u64(out, snapshot->epoch());
      util::put_u32(out, snapshot->digest());
      return true;
    }
    case kShutdown: {
      util::put_u8(out, kOk);
      return false;
    }
    default:
      put_error(out, "unknown opcode " + std::to_string(*opcode));
      return true;
  }
}

std::optional<QueryReply> decode_query_reply(std::span<const std::uint8_t> payload) {
  util::ByteReader reader(payload);
  if (reader.u8().value_or(kError) != kOk) return std::nullopt;
  const auto verdict = reader.u8();
  const auto epoch = reader.u64();
  if (!epoch || !reader.exhausted()) return std::nullopt;
  return QueryReply{*verdict != 0, *epoch};
}

std::optional<StatsReply> decode_stats_reply(std::span<const std::uint8_t> payload) {
  util::ByteReader reader(payload);
  if (reader.u8().value_or(kError) != kOk) return std::nullopt;
  StatsReply reply;
  const auto epoch = reader.u64();
  const auto nodes = reader.u64();
  const auto edges = reader.u64();
  const auto events = reader.u64();
  if (!events || !reader.exhausted()) return std::nullopt;
  reply.epoch = *epoch;
  reply.nodes = *nodes;
  reply.validated_edges = *edges;
  reply.events_applied = *events;
  return reply;
}

std::optional<DigestReply> decode_digest_reply(std::span<const std::uint8_t> payload) {
  util::ByteReader reader(payload);
  if (reader.u8().value_or(kError) != kOk) return std::nullopt;
  const auto epoch = reader.u64();
  const auto digest = reader.u32();
  if (!digest || !reader.exhausted()) return std::nullopt;
  return DigestReply{*epoch, *digest};
}

}  // namespace snd::service::wire
