// A long-lived neighbor-validation service.
//
// Where the bench drivers run one deployment, measure, and exit, the
// service owns a functional topology for the lifetime of a process: it
// ingests TopologyEvents (deploy / update / revoke) and answers
// F(u, v) queries against immutable, versioned Snapshots. This is the
// base-station role the paper's centralized scheme (§2) assumes, grown into
// an actual daemon: apps/snd_serve exposes it over a socket, or a
// simulation embeds it directly.
//
// ## Incremental recomputation
//
// An event at position p only perturbs the topology inside disc(p, 2R):
// nodes within R gain/lose the event's node in their tentative list N(·),
// and any validated pair (a, v) both endpoints of which see a changed
// neighborhood lies within 2R of p -- the locality argument behind the
// paper's Theorem 4 incremental-deployment safety.
//
// Ingestion exploits a bound sharper than that safe 2R envelope. The only
// list membership any single event changes is that of its own node, so for
// a pair of pre-existing nodes (a, v) the predicate
//
//   v in N(a)  and  |N(a) ∩ N(v)| >= t+1
//
// can flip only when the event node enters or leaves N(a) ∩ N(v) (or is v
// itself) -- which requires BOTH a and v within R of p. Ingestion therefore
// re-splices tentative lists across disc(p, R) and rechecks exactly the
// validated pairs with both endpoints in that disc; an update event uses
// the union of the old- and new-position discs. Everything else is
// structurally shared with the previous epoch. rebuild() recomputes the
// world from scratch through the same derivation helpers; the equivalence
// suite asserts both paths serialize byte-identically after arbitrary
// event sequences.
//
// ## Concurrency
//
// Mutators (apply / apply_all / seed_topology) are externally serialized by
// the caller (the daemon's ingest loop is single-threaded). Readers call
// snapshot() from any thread: publication swaps a shared_ptr under a short
// mutex, and a reader keeps its Snapshot alive for as long as it likes
// without ever blocking ingestion (tests/service_stress_test runs this
// under TSan).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "crypto/key.h"
#include "crypto/sha256.h"
#include "service/events.h"
#include "service/snapshot.h"
#include "util/flat.h"
#include "util/geometry.h"
#include "util/ids.h"

namespace snd::service {

/// Uniform grid over node positions with cell size R; every disc query the
/// service makes has radius R or 2R, i.e. a 3x3 or 5x5 cell block.
class SpatialGrid {
 public:
  explicit SpatialGrid(double cell_size) : cell_(cell_size) {}

  void insert(NodeId id, util::Vec2 position);
  void erase(NodeId id, util::Vec2 position);

  /// Ids of indexed nodes within `radius` of `center` (inclusive), sorted.
  [[nodiscard]] std::vector<NodeId> query_disc(util::Vec2 center, double radius,
                                               const util::FlatMap<NodeId, util::Vec2>&
                                                   positions) const;

 private:
  [[nodiscard]] std::uint64_t cell_key(util::Vec2 position) const;

  double cell_;
  util::FlatMap<std::uint64_t, std::vector<NodeId>> cells_;
};

struct ServiceConfig {
  double radio_range = 50.0;
  std::size_t threshold_t = 2;
  /// When present, the service maintains the paper's binding commitment
  /// C(u) (version 0, over u's current tentative list) for every live node
  /// -- the base-station role holds K, so it can re-issue records on
  /// demand. Absent (the default) disables commitment maintenance.
  crypto::SymmetricKey master_key;
};

/// Outcome of one ingested event. Rejections (deploying an existing id,
/// updating/revoking an unknown one) leave the topology unchanged.
struct ApplyResult {
  bool ok = true;
  std::string error;

  [[nodiscard]] static ApplyResult success() { return {}; }
  [[nodiscard]] static ApplyResult failure(std::string message) {
    return {false, std::move(message)};
  }
};

class ValidationService {
 public:
  explicit ValidationService(ServiceConfig config);

  /// Ingest one event and publish the next epoch. Touches only per-node
  /// states within radio range of the event position(s); see the header
  /// comment for the locality argument.
  ApplyResult apply(const TopologyEvent& event);

  /// Ingest a batch, publishing a single epoch at the end. Returns the
  /// number of events applied successfully (failures are skipped, matching
  /// replaying the batch through apply one by one).
  std::size_t apply_all(std::span<const TopologyEvent> events);

  /// Bulk bootstrap: deploys all nodes, then derives every list once --
  /// O(n · deg²) instead of n incremental events' O(n · deg³) -- and
  /// publishes one epoch. Requires distinct ids; call on an empty service.
  void seed_topology(std::span<const std::pair<NodeId, util::Vec2>> nodes);

  /// Current snapshot; never null, safe to call from any thread and to
  /// retain across later ingestion.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;

  /// F(u, v) at the current epoch.
  [[nodiscard]] bool validate(NodeId u, NodeId v) const {
    return snapshot()->validate(u, v);
  }

  /// From-scratch recomputation of the current world (same epoch number),
  /// ignoring all incrementally-maintained lists. The equivalence gate
  /// asserts snapshot()->canonical_json() == rebuild()->canonical_json().
  [[nodiscard]] std::shared_ptr<const Snapshot> rebuild() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return positions_.size(); }
  /// Events accepted since construction (not counting seed_topology nodes).
  [[nodiscard]] std::uint64_t events_applied() const { return events_applied_; }

  /// C(id) over id's current tentative list, or nullptr when id is not
  /// live or no master key is configured. Maintained incrementally: each
  /// ingested event recomputes only the commitments of nodes whose
  /// tentative list changed, in one batched drain of the multi-buffer hash
  /// engine (bit-identical to core::binding_commitment). Call from the
  /// ingest thread only, like the mutators.
  [[nodiscard]] const crypto::Digest* binding_commitment_of(NodeId id) const {
    return commitments_.find(id);
  }
  [[nodiscard]] std::size_t commitment_count() const { return commitments_.size(); }

 private:
  /// Tentative list for `id`: live nodes within R, excluding `id` itself.
  [[nodiscard]] topology::NeighborList derive_neighbors(NodeId id,
                                                        util::Vec2 position) const;
  /// Validated list for `id` given the current tentative lists in `nodes`.
  [[nodiscard]] topology::NeighborList derive_validated(
      NodeId id, const Snapshot::NodeMap& nodes) const;

  /// Clones nodes[id] (which must exist) for mutation.
  [[nodiscard]] static NodeState clone_state(const Snapshot::NodeMap& nodes, NodeId id);

  ApplyResult apply_locked(const TopologyEvent& event, Snapshot::NodeMap& nodes);
  void publish(Snapshot::NodeMap nodes);

  /// Recomputes the binding commitments of `ids` against `nodes` in one
  /// batched hash drain; ids no longer live are erased instead. No-op
  /// without a configured master key.
  void refresh_commitments(std::span<const NodeId> ids, const Snapshot::NodeMap& nodes);

  ServiceConfig config_;
  SpatialGrid grid_;
  util::FlatMap<NodeId, util::Vec2> positions_;
  /// The current epoch's immutable node map, shared with the published
  /// Snapshot; ingestion copies it, mutates the copy, and re-freezes.
  /// Never null.
  std::shared_ptr<const Snapshot::NodeMap> map_;
  std::uint64_t epoch_ = 0;
  std::uint64_t events_applied_ = 0;
  /// Live nodes' binding commitments (empty without a master key). Not part
  /// of Snapshot -- commitments are secrets of the K-holding role, not of
  /// the published topology.
  util::FlatMap<NodeId, crypto::Digest> commitments_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> current_;
};

}  // namespace snd::service
