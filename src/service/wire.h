// Binary request/response protocol for apps/snd_serve.
//
// Framing: every message is a big-endian u32 payload length followed by
// that many bytes. A request payload starts with a u8 opcode; the matching
// response payload starts with a u8 status (kOk / kError). Full field
// layouts are documented in docs/SERVICE.md; positions travel as the IEEE
// bit pattern of the double (u64), so a round trip is exact.
//
//   kQuery       u32 u, u32 v            -> status, u8 verdict, u64 epoch
//   kBatchQuery  u32 n, n * (u32 u, u32 v)
//                                        -> status, u64 epoch, u32 n, n * u8
//   kEvent       u8 kind, u32 node, u64 x_bits, u64 y_bits
//                                        -> status, u64 epoch
//   kStats       (empty)                 -> status, u64 epoch, u64 nodes,
//                                           u64 validated_edges, u64 events
//   kDigest      (empty)                 -> status, u64 epoch, u32 digest
//   kShutdown    (empty)                 -> status
//
// An error response carries a length-prefixed (u16) UTF-8 message after the
// status byte. handle_request is transport-independent: the daemon, the
// load generator's socket mode, and the unit tests all feed it the same
// payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "service/validation_service.h"
#include "util/bytes.h"

namespace snd::service::wire {

inline constexpr std::uint8_t kQuery = 1;
inline constexpr std::uint8_t kBatchQuery = 2;
inline constexpr std::uint8_t kEvent = 3;
inline constexpr std::uint8_t kStats = 4;
inline constexpr std::uint8_t kDigest = 5;
inline constexpr std::uint8_t kShutdown = 6;

inline constexpr std::uint8_t kOk = 0;
inline constexpr std::uint8_t kError = 1;

/// Largest accepted request payload (a batch of ~1M pairs); oversized
/// frames poison the connection and the server closes it.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

// -- request encoders (payload only; frame() adds the length prefix) ------
[[nodiscard]] util::Bytes encode_query(NodeId u, NodeId v);
[[nodiscard]] util::Bytes encode_batch_query(
    std::span<const std::pair<NodeId, NodeId>> pairs);
[[nodiscard]] util::Bytes encode_event(const TopologyEvent& event);
[[nodiscard]] util::Bytes encode_stats();
[[nodiscard]] util::Bytes encode_digest();
[[nodiscard]] util::Bytes encode_shutdown();

/// Wraps a payload in the u32 length prefix.
[[nodiscard]] util::Bytes frame(const util::Bytes& payload);

/// Executes one request payload against the service, appending the response
/// payload to `out`. Returns false only for kShutdown (the caller should
/// stop serving after sending the response); malformed requests produce a
/// kError response and return true.
bool handle_request(ValidationService& service, std::span<const std::uint8_t> payload,
                    util::Bytes& out);

// -- response decoders (used by serve_qps and the tests) ------------------
struct QueryReply {
  bool accepted = false;
  std::uint64_t epoch = 0;
};
[[nodiscard]] std::optional<QueryReply> decode_query_reply(
    std::span<const std::uint8_t> payload);

struct StatsReply {
  std::uint64_t epoch = 0;
  std::uint64_t nodes = 0;
  std::uint64_t validated_edges = 0;
  std::uint64_t events_applied = 0;
};
[[nodiscard]] std::optional<StatsReply> decode_stats_reply(
    std::span<const std::uint8_t> payload);

struct DigestReply {
  std::uint64_t epoch = 0;
  std::uint32_t digest = 0;
};
[[nodiscard]] std::optional<DigestReply> decode_digest_reply(
    std::span<const std::uint8_t> payload);

}  // namespace snd::service::wire
