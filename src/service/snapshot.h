// Immutable, versioned views of the service's functional topology.
//
// The service answers F(u, v) from a Snapshot: an epoch number plus a map
// from live node to an immutable per-node state (position, tentative
// neighbor list N(u), validated functional list). Per-node states are held
// by shared_ptr and shared across snapshots -- ingesting an event clones
// only the nodes inside the affected radio disc, so consecutive snapshots
// share almost all of their payload and readers holding an old epoch cost
// nothing but its retention.
//
// canonical_json() / digest() deliberately exclude the epoch: they describe
// the topology itself, so an incrementally-maintained snapshot and a
// from-scratch rebuild of the same world serialize byte-identically. That
// equality is the service's correctness gate (tests/service_equivalence_test,
// the CI serve-smoke job, and serve_qps --verify-rebuild all assert it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "topology/graph.h"
#include "util/flat.h"
#include "util/geometry.h"
#include "util/ids.h"

namespace snd::service {

/// Everything the service knows about one live node. Immutable once
/// published (always held as shared_ptr<const NodeState>).
struct NodeState {
  util::Vec2 position;
  /// N(u): tentative neighbors, i.e. live nodes within radio range. Sorted.
  topology::NeighborList neighbors;
  /// Functional neighbors: v in neighbors with |N(u) ∩ N(v)| >= t+1. Sorted.
  topology::NeighborList validated;
};

class Snapshot {
 public:
  using NodeMap = util::FlatMap<NodeId, std::shared_ptr<const NodeState>>;

  /// `nodes` must be non-null and is shared, not copied: the service hands
  /// the same immutable map to the snapshot it publishes and to the next
  /// epoch's copy-on-write base.
  Snapshot(std::uint64_t epoch, std::size_t threshold_t, double radio_range,
           std::shared_ptr<const NodeMap> nodes)
      : epoch_(epoch), threshold_t_(threshold_t), radio_range_(radio_range),
        nodes_(std::move(nodes)) {}

  /// Monotonic version: bumped once per publish (event or batch).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t threshold() const { return threshold_t_; }
  [[nodiscard]] double radio_range() const { return radio_range_; }

  /// F(u, v) at this epoch: both live, v in u's validated list.
  [[nodiscard]] bool validate(NodeId u, NodeId v) const;

  [[nodiscard]] const NodeState* find(NodeId id) const {
    const auto* entry = nodes_->find(id);
    return entry != nullptr ? entry->get() : nullptr;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_->size(); }
  [[nodiscard]] const NodeMap& nodes() const { return *nodes_; }

  /// Directed functional-neighbor edge count (each accepted pair counts
  /// twice, matching Digraph conventions).
  [[nodiscard]] std::size_t validated_edge_count() const;

  /// Canonical serialization of the topology -- nodes ascending by id, each
  /// with exact (hex-float) position and both lists -- excluding the epoch,
  /// so incremental == rebuild is a byte-level string comparison.
  [[nodiscard]] std::string canonical_json() const;
  /// CRC-32 of canonical_json(); the wire protocol's cheap equivalence probe.
  [[nodiscard]] std::uint32_t digest() const;

 private:
  std::uint64_t epoch_;
  std::size_t threshold_t_;
  double radio_range_;
  std::shared_ptr<const NodeMap> nodes_;
};

}  // namespace snd::service
