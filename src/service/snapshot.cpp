#include "service/snapshot.h"

#include <cstdio>
#include <span>

#include "util/crc32.h"

namespace snd::service {

namespace {

/// Exact round-trip double formatting (hex float), so canonical_json is a
/// bit-level description of positions rather than a rounded one.
void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "\"%a\"", value);
  out += buffer;
}

void append_list(std::string& out, const topology::NeighborList& list) {
  out += '[';
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(list[i]);
  }
  out += ']';
}

}  // namespace

bool Snapshot::validate(NodeId u, NodeId v) const {
  const NodeState* state = find(u);
  return state != nullptr && nodes_->contains(v) &&
         topology::contains(state->validated, v);
}

std::size_t Snapshot::validated_edge_count() const {
  std::size_t count = 0;
  for (const auto& [id, state] : *nodes_) count += state->validated.size();
  return count;
}

std::string Snapshot::canonical_json() const {
  std::string out;
  out.reserve(64 * nodes_->size() + 64);
  out += "{\"t\":" + std::to_string(threshold_t_) + ",\"radio_range\":";
  append_double(out, radio_range_);
  out += ",\"nodes\":[";
  bool first = true;
  for (const auto& [id, state] : *nodes_) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(id) + ",\"pos\":[";
    append_double(out, state->position.x);
    out += ',';
    append_double(out, state->position.y);
    out += "],\"neighbors\":";
    append_list(out, state->neighbors);
    out += ",\"validated\":";
    append_list(out, state->validated);
    out += '}';
  }
  out += "]}";
  return out;
}

std::uint32_t Snapshot::digest() const {
  const std::string json = canonical_json();
  return util::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
}

}  // namespace snd::service
