#include "service/validation_service.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>
#include <vector>

#include "core/commitment.h"
#include "core/validation.h"

namespace snd::service {

namespace {

/// Packs the two signed cell coordinates into one map key.
std::uint64_t pack_cell(std::int32_t cx, std::int32_t cy) {
  const auto ux = static_cast<std::uint32_t>(cx);
  const auto uy = static_cast<std::uint32_t>(cy);
  return (static_cast<std::uint64_t>(ux) << 32) | uy;
}

std::int32_t cell_coord(double v, double cell) {
  return static_cast<std::int32_t>(std::floor(v / cell));
}

/// Sorted-list insert/erase returning whether the list changed.
bool insert_value(topology::NeighborList& list, NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

bool erase_value(topology::NeighborList& list, NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

}  // namespace

void SpatialGrid::insert(NodeId id, util::Vec2 position) {
  cells_.get_or_insert(cell_key(position)).push_back(id);
}

void SpatialGrid::erase(NodeId id, util::Vec2 position) {
  auto* bucket = cells_.find(cell_key(position));
  if (bucket == nullptr) return;
  const auto it = std::find(bucket->begin(), bucket->end(), id);
  if (it != bucket->end()) bucket->erase(it);
  if (bucket->empty()) cells_.erase(cell_key(position));
}

std::uint64_t SpatialGrid::cell_key(util::Vec2 position) const {
  return pack_cell(cell_coord(position.x, cell_), cell_coord(position.y, cell_));
}

std::vector<NodeId> SpatialGrid::query_disc(
    util::Vec2 center, double radius,
    const util::FlatMap<NodeId, util::Vec2>& positions) const {
  const double r2 = radius * radius;
  const std::int32_t x_lo = cell_coord(center.x - radius, cell_);
  const std::int32_t x_hi = cell_coord(center.x + radius, cell_);
  const std::int32_t y_lo = cell_coord(center.y - radius, cell_);
  const std::int32_t y_hi = cell_coord(center.y + radius, cell_);
  std::vector<NodeId> result;
  for (std::int32_t cx = x_lo; cx <= x_hi; ++cx) {
    for (std::int32_t cy = y_lo; cy <= y_hi; ++cy) {
      const auto* bucket = cells_.find(pack_cell(cx, cy));
      if (bucket == nullptr) continue;
      for (const NodeId id : *bucket) {
        const auto* position = positions.find(id);
        if (position != nullptr && util::distance_squared(*position, center) <= r2) {
          result.push_back(id);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

ValidationService::ValidationService(ServiceConfig config)
    : config_(config), grid_(config.radio_range),
      map_(std::make_shared<const Snapshot::NodeMap>()) {
  current_ = std::make_shared<const Snapshot>(epoch_, config_.threshold_t,
                                              config_.radio_range, map_);
}

topology::NeighborList ValidationService::derive_neighbors(NodeId id,
                                                           util::Vec2 position) const {
  topology::NeighborList neighbors =
      grid_.query_disc(position, config_.radio_range, positions_);
  // query_disc includes the node itself when indexed; N(u) excludes u.
  const auto self = std::lower_bound(neighbors.begin(), neighbors.end(), id);
  if (self != neighbors.end() && *self == id) neighbors.erase(self);
  return neighbors;
}

topology::NeighborList ValidationService::derive_validated(
    NodeId id, const Snapshot::NodeMap& nodes) const {
  const auto* state = nodes.find(id);
  topology::NeighborList validated;
  if (state == nullptr) return validated;
  const topology::NeighborList& mine = (*state)->neighbors;
  for (const NodeId other : mine) {
    const auto* peer = nodes.find(other);
    if (peer == nullptr) continue;
    if (core::meets_threshold(mine, (*peer)->neighbors, config_.threshold_t)) {
      validated.push_back(other);
    }
  }
  return validated;  // `mine` is sorted, so validated is too
}

NodeState ValidationService::clone_state(const Snapshot::NodeMap& nodes, NodeId id) {
  return **nodes.find(id);
}

ApplyResult ValidationService::apply_locked(const TopologyEvent& event,
                                            Snapshot::NodeMap& nodes) {
  const NodeId id = event.node;

  // Pre-existing nodes inside the event's radio disc(s). `gain` / `lose`
  // are the (disjoint) subsets whose tentative list picks up / drops the
  // event node; `process` is their union plus, for updates, the nodes that
  // stay adjacent across the move (their pair verdicts can still flip
  // because N(id) changed).
  topology::NeighborList process;
  topology::NeighborList gain;
  topology::NeighborList lose;
  bool live_after = true;

  switch (event.kind) {
    case EventKind::kDeploy: {
      if (positions_.contains(id)) {
        return ApplyResult::failure("deploy: node " + std::to_string(id) +
                                    " already live");
      }
      positions_.insert_or_assign(id, event.position);
      grid_.insert(id, event.position);
      auto state = std::make_shared<NodeState>();
      state->position = event.position;
      state->neighbors = derive_neighbors(id, event.position);
      gain = state->neighbors;
      process = gain;
      nodes.insert_or_assign(id, std::move(state));
      break;
    }
    case EventKind::kRevoke: {
      const auto* position = positions_.find(id);
      if (position == nullptr) {
        return ApplyResult::failure("revoke: node " + std::to_string(id) +
                                    " not live");
      }
      lose = (*nodes.find(id))->neighbors;
      process = lose;
      grid_.erase(id, *position);
      positions_.erase(id);
      nodes.erase(id);
      live_after = false;
      break;
    }
    case EventKind::kUpdate: {
      const auto* position = positions_.find(id);
      if (position == nullptr) {
        return ApplyResult::failure("update: node " + std::to_string(id) +
                                    " not live");
      }
      const topology::NeighborList old_neighbors = (*nodes.find(id))->neighbors;
      grid_.erase(id, *position);
      positions_.insert_or_assign(id, event.position);
      grid_.insert(id, event.position);
      NodeState moved = clone_state(nodes, id);
      moved.position = event.position;
      moved.neighbors = derive_neighbors(id, event.position);
      const topology::NeighborList& new_neighbors = moved.neighbors;
      std::set_difference(new_neighbors.begin(), new_neighbors.end(),
                          old_neighbors.begin(), old_neighbors.end(),
                          std::back_inserter(gain));
      std::set_difference(old_neighbors.begin(), old_neighbors.end(),
                          new_neighbors.begin(), new_neighbors.end(),
                          std::back_inserter(lose));
      std::set_union(old_neighbors.begin(), old_neighbors.end(),
                     new_neighbors.begin(), new_neighbors.end(),
                     std::back_inserter(process));
      nodes.insert_or_assign(id, std::make_shared<const NodeState>(std::move(moved)));
      break;
    }
  }

  // Pass 1: splice the event node in/out of its neighbors' tentative lists
  // (all lists must be final before any threshold is evaluated). Dropping
  // the event node also drops it from the validated list -- validated(a) is
  // a subset of N(a) by construction, and `id` is the only id whose
  // membership this event can change.
  for (const NodeId a : gain) {
    NodeState next = clone_state(nodes, a);
    insert_value(next.neighbors, id);
    nodes.insert_or_assign(a, std::make_shared<const NodeState>(std::move(next)));
  }
  for (const NodeId a : lose) {
    NodeState next = clone_state(nodes, a);
    erase_value(next.neighbors, id);
    erase_value(next.validated, id);
    nodes.insert_or_assign(a, std::make_shared<const NodeState>(std::move(next)));
  }

  // Pass 2: recheck exactly the pairs the event can have flipped. A pair's
  // predicate (adjacency + common-neighbor count) reads only N(a) and N(v),
  // and the event changed only `id`'s membership anywhere -- so both
  // endpoints lie in the disc(s), i.e. in `process` (or are `id` itself).
  topology::NeighborList affected = process;
  if (live_after) insert_value(affected, id);
  for (const NodeId a : process) {
    const NodeState& current = **nodes.find(a);
    const topology::NeighborList candidates =
        topology::intersect(current.neighbors, affected);
    if (candidates.empty()) continue;
    NodeState next = current;
    bool changed = false;
    for (const NodeId v : candidates) {
      const NodeState& peer = **nodes.find(v);
      if (core::meets_threshold(next.neighbors, peer.neighbors, config_.threshold_t)) {
        changed |= insert_value(next.validated, v);
      } else {
        changed |= erase_value(next.validated, v);
      }
    }
    if (changed) {
      nodes.insert_or_assign(a, std::make_shared<const NodeState>(std::move(next)));
    }
  }
  if (live_after) {
    NodeState next = clone_state(nodes, id);
    next.validated = derive_validated(id, nodes);
    nodes.insert_or_assign(id, std::make_shared<const NodeState>(std::move(next)));
  }

  // The only tentative lists this event changed are those of gain/lose
  // members and the event node itself -- exactly the commitments to refresh
  // (one batched drain; a revoked id is erased inside the helper).
  if (config_.master_key.present()) {
    topology::NeighborList dirty;
    std::set_union(gain.begin(), gain.end(), lose.begin(), lose.end(),
                   std::back_inserter(dirty));
    insert_value(dirty, id);
    refresh_commitments(dirty, nodes);
  }

  ++events_applied_;
  return ApplyResult::success();
}

void ValidationService::refresh_commitments(std::span<const NodeId> ids,
                                            const Snapshot::NodeMap& nodes) {
  if (!config_.master_key.present() || ids.empty()) return;
  std::vector<core::BindingSpec> specs;
  std::vector<NodeId> live;
  specs.reserve(ids.size());
  live.reserve(ids.size());
  for (const NodeId id : ids) {
    const auto* state = nodes.find(id);
    if (state == nullptr) {
      commitments_.erase(id);
      continue;
    }
    specs.push_back({id, 0, &(*state)->neighbors});
    live.push_back(id);
  }
  std::vector<crypto::Digest> digests(specs.size());
  core::binding_commitments(config_.master_key, specs, digests);
  for (std::size_t i = 0; i < live.size(); ++i) {
    commitments_.insert_or_assign(live[i], digests[i]);
  }
}

ApplyResult ValidationService::apply(const TopologyEvent& event) {
  Snapshot::NodeMap nodes = *map_;
  const ApplyResult result = apply_locked(event, nodes);
  if (result.ok) publish(std::move(nodes));
  return result;
}

std::size_t ValidationService::apply_all(std::span<const TopologyEvent> events) {
  Snapshot::NodeMap nodes = *map_;
  std::size_t applied = 0;
  for (const TopologyEvent& event : events) {
    if (apply_locked(event, nodes).ok) ++applied;
  }
  publish(std::move(nodes));
  return applied;
}

void ValidationService::seed_topology(
    std::span<const std::pair<NodeId, util::Vec2>> nodes) {
  for (const auto& [id, position] : nodes) {
    positions_.insert_or_assign(id, position);
    grid_.insert(id, position);
  }
  Snapshot::NodeMap map;
  map.reserve(nodes.size());
  for (const auto& [id, position] : nodes) {
    auto state = std::make_shared<NodeState>();
    state->position = position;
    state->neighbors = derive_neighbors(id, position);
    map.insert_or_assign(id, std::move(state));
  }
  for (const auto& [id, position] : nodes) {
    topology::NeighborList validated = derive_validated(id, map);
    NodeState next = clone_state(map, id);
    next.validated = std::move(validated);
    map.insert_or_assign(id, std::make_shared<const NodeState>(std::move(next)));
  }
  if (config_.master_key.present()) {
    std::vector<NodeId> ids;
    ids.reserve(nodes.size());
    for (const auto& [id, position] : nodes) ids.push_back(id);
    refresh_commitments(ids, map);
  }
  publish(std::move(map));
}

std::shared_ptr<const Snapshot> ValidationService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return current_;
}

std::shared_ptr<const Snapshot> ValidationService::rebuild() const {
  Snapshot::NodeMap map;
  map.reserve(positions_.size());
  for (const auto& [id, position] : positions_) {
    auto state = std::make_shared<NodeState>();
    state->position = position;
    state->neighbors = derive_neighbors(id, position);
    map.insert_or_assign(id, std::move(state));
  }
  for (const auto& [id, position] : positions_) {
    topology::NeighborList validated = derive_validated(id, map);
    NodeState next = clone_state(map, id);
    next.validated = std::move(validated);
    map.insert_or_assign(id, std::make_shared<const NodeState>(std::move(next)));
  }
  return std::make_shared<const Snapshot>(
      epoch_, config_.threshold_t, config_.radio_range,
      std::make_shared<const Snapshot::NodeMap>(std::move(map)));
}

void ValidationService::publish(Snapshot::NodeMap nodes) {
  map_ = std::make_shared<const Snapshot::NodeMap>(std::move(nodes));
  ++epoch_;
  auto next = std::make_shared<const Snapshot>(epoch_, config_.threshold_t,
                                               config_.radio_range, map_);
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  current_ = std::move(next);
}

}  // namespace snd::service
