// SndNode: the per-device agent running the localized neighbor validation
// protocol of paper §4.1 (plus the §4.4 update extension).
//
// Lifecycle of a node deployed at time T:
//   T            Hello broadcasts (repeated, jittered).
//   ..T+W_d      collects HelloAcks/Hellos, direct-verifying each sender;
//                frozen into the tentative list N(u) at T+W_d.
//   T+W_d        binding record R(u) = {0, N(u), C(u)} created; K_u = H(K|u)
//                derived; RecordRequests sent to every tentative neighbor.
//   ..T+W_d+W_e  RecordReplies collected and verified with K.
//   T+W_d+W_e    threshold check |N(u) ∩ N(v)| >= t+1 for every v with a
//                verified record; functional neighbors chosen; relation
//                commitments C(u,v) = H(K_v|u) sent; evidences E(u,v) sent
//                to update-capable neighbors.
//   +W_u         (extension only) serves binding-record updates with K.
//   then         *** K erased ***. The node keeps only R(u), K_u, N(u),
//                the functional list, and the evidence buffer.
//
// At any later time the node answers RecordRequests, accepts relation
// commitments verified against its own K_u, buffers evidences, and (if the
// extension is on) requests record updates from newly deployed nodes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/binding_record.h"
#include "core/config.h"
#include "core/messenger.h"
#include "core/wire.h"
#include "crypto/keypredist.h"
#include "sim/network.h"
#include "util/flat.h"
#include "verify/verifier.h"

namespace snd::core {

/// Evidence issuers -> E(x, u). Representation (seed std::map vs flat
/// sorted array) follows util::soa_enabled(); iteration is ascending by
/// issuer either way.
using EvidenceMap = util::DualMap<NodeId, crypto::Digest>;

class SndNode {
 public:
  /// `boot_epoch` counts reboots of this device (0 on first boot); it only
  /// offsets the Messenger's nonce counters so a restarted node's traffic
  /// is accepted by peers that remember the previous incarnation.
  SndNode(sim::Network& network, sim::DeviceId device, NodeId identity,
          const crypto::SymmetricKey& master_key,
          std::shared_ptr<verify::DirectVerifier> verifier,
          std::shared_ptr<crypto::KeyPredistribution> keys, ProtocolConfig config,
          std::uint32_t boot_epoch = 0);

  SndNode(const SndNode&) = delete;
  SndNode& operator=(const SndNode&) = delete;
  /// Detaches from the network: scheduled protocol events capture `this`
  /// and must not outlive the agent.
  ~SndNode();

  /// Registers the radio receiver and schedules the discovery sequence
  /// starting at the current simulation time.
  void start();

  /// Stops participating (battery death or compromise): deregisters the
  /// receiver and cancels every pending scheduled event.
  void stop();

  // -- State queries ----------------------------------------------------
  [[nodiscard]] NodeId identity() const { return identity_; }
  [[nodiscard]] sim::DeviceId device() const { return device_; }
  [[nodiscard]] const topology::NeighborList& tentative_neighbors() const { return tentative_; }
  [[nodiscard]] const topology::NeighborList& functional_neighbors() const { return functional_; }
  [[nodiscard]] bool has_record() const { return record_.has_value(); }
  [[nodiscard]] const BindingRecord& record() const { return *record_; }
  [[nodiscard]] bool master_key_present() const { return master_.present(); }
  [[nodiscard]] bool discovery_complete() const { return discovery_complete_; }
  /// Authenticated messages this node's transport rejected as replays.
  [[nodiscard]] std::uint64_t replay_rejects() const { return messenger_.replay_rejects(); }
  /// Window-flagged duplicates delivered anyway (nonzero only under the
  /// kReplayWindowBypass planted bug).
  [[nodiscard]] std::uint64_t replay_accepts() const { return messenger_.replay_accepts(); }

  /// Evidences buffered since the last record update: (issuer, E(x, u)).
  [[nodiscard]] const EvidenceMap& evidence_buffer() const { return evidence_buffer_; }

  // -- Update extension (§4.4) -------------------------------------------
  /// Asks `server` (a newly deployed node that should still hold K) to
  /// re-issue this node's binding record using the buffered evidences.
  /// Returns false if the extension is off or there is nothing to add.
  bool request_update(NodeId server);

  /// Whether this node automatically requests an update from every newly
  /// deployed node it hears, whenever it holds unused evidences. Default
  /// off; benches and the creeping attack turn it on.
  void set_auto_update(bool enabled) { auto_update_ = enabled; }

  [[nodiscard]] std::size_t updates_requested() const { return updates_requested_; }
  [[nodiscard]] std::uint32_t record_version() const { return record_ ? record_->version : 0; }

  /// How long this node held the master key K: deployment to erasure.
  /// Returns the running exposure if K is still present.
  [[nodiscard]] sim::Time key_exposure() const;

  // -- Adversary interface ------------------------------------------------
  /// Everything an attacker physically extracting this node's memory gets
  /// *right now*. Honors erasure: `master` is absent after key deletion.
  struct Secrets {
    crypto::SymmetricKey master;            // present only before erasure
    crypto::SymmetricKey verification_key;  // K_u (kept forever)
    std::optional<BindingRecord> record;
    topology::NeighborList tentative;
    topology::NeighborList functional;
    std::map<NodeId, crypto::Digest> evidence_buffer;
  };
  [[nodiscard]] Secrets steal_secrets() const;

 private:
  /// Schedules `action` and remembers the event so stop() can cancel it.
  void schedule(sim::Time at, sim::EventAction action);
  /// A relative delay as measured by this node's local clock: scaled by the
  /// fault layer's per-node timer drift when a skew fault is armed,
  /// otherwise returned untouched (the common, bit-identical path).
  [[nodiscard]] sim::Time skewed(sim::Time delay) const;
  /// Now plus a uniform draw from [0, tx_jitter] (per-message backoff),
  /// measured on the local (possibly skewed) clock.
  sim::Time jittered_now();
  void send_hellos(std::size_t remaining);
  void on_packet(const sim::Packet& packet);
  void on_hello(const sim::Packet& packet);
  void on_hello_ack(const sim::Packet& packet);
  void consider_tentative(const sim::Packet& packet);
  void finish_discovery();
  void on_record_request(const sim::Packet& packet);
  void broadcast_record();
  // Payload spans alias the packet (or the Messenger's view of it) and are
  // only valid for the duration of the handler.
  void on_record_reply(const sim::Packet& packet, std::span<const std::uint8_t> payload);
  void run_validation();
  void on_relation_commit(const sim::Packet& packet, std::span<const std::uint8_t> payload);
  void on_evidence(const sim::Packet& packet, std::span<const std::uint8_t> payload);
  void on_update_request(const sim::Packet& packet, std::span<const std::uint8_t> payload);
  void on_update_reply(const sim::Packet& packet, std::span<const std::uint8_t> payload);
  void erase_master_key();

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId identity_;
  crypto::SymmetricKey master_;
  crypto::SymmetricKey verification_key_;
  std::shared_ptr<verify::DirectVerifier> verifier_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  ProtocolConfig config_;
  Messenger messenger_;

  bool started_ = false;
  bool discovery_complete_ = false;
  bool validated_ = false;
  bool auto_update_ = false;

  topology::NeighborList tentative_;
  topology::NeighborList functional_;
  std::optional<BindingRecord> record_;
  /// Verified binding records of tentative neighbors (kept only until
  /// validation; the paper notes R(v) can be deleted after use).
  util::DualMap<NodeId, BindingRecord> neighbor_records_;
  /// A record request arrived before our record existed.
  bool pending_record_request_ = false;
  /// An aggregated record broadcast is already scheduled.
  bool record_broadcast_scheduled_ = false;
  /// Evidences received from later deployments: issuer -> E(x, u).
  EvidenceMap evidence_buffer_;
  /// Identities already answered with a HelloAck (duplicate suppression).
  util::DualSet<NodeId> acked_identities_;
  /// Direct-verification verdicts, one per candidate identity.
  util::DualMap<NodeId, bool> verification_cache_;
  /// Update requests this node has issued (diagnostics).
  std::size_t updates_requested_ = 0;
  /// Events scheduled by this agent (cancelled on stop/destruction).
  std::vector<sim::EventId> pending_events_;
  sim::Time deployed_at_;
  std::optional<sim::Time> erased_at_;
};

}  // namespace snd::core
