#include "core/deployment_driver.h"

#include <cassert>

namespace snd::core {

SndDeployment::SndDeployment(DeploymentConfig config)
    : config_(config),
      master_(crypto::SymmetricKey::from_seed(config.seed ^ 0x6d61737465724bULL)),
      deploy_rng_(config.seed) {
  std::unique_ptr<sim::PropagationModel> propagation;
  if (config_.log_normal_shadowing) {
    propagation = std::make_unique<sim::LogNormalModel>(
        config_.radio_range, config_.path_loss_exponent, config_.shadowing_sigma_db,
        config_.seed);
  } else {
    propagation = std::make_unique<sim::UnitDiskModel>(config_.radio_range);
  }
  sim::ChannelConfig channel;
  channel.loss_probability = config_.channel_loss;
  channel.half_duplex = config_.half_duplex;
  network_ = std::make_unique<sim::Network>(std::move(propagation), channel, config_.seed ^ 1,
                                            config_.energy);
  verifier_ = std::make_shared<verify::OracleVerifier>();
  keys_ = crypto::KdcScheme::from_seed(config_.seed ^ 2);
}

void SndDeployment::set_verifier(std::shared_ptr<verify::DirectVerifier> verifier) {
  assert(agents_.empty() && "set_verifier must precede the first deploy");
  verifier_ = std::move(verifier);
}

void SndDeployment::set_key_scheme(std::shared_ptr<crypto::KeyPredistribution> keys) {
  assert(agents_.empty() && "set_key_scheme must precede the first deploy");
  keys_ = std::move(keys);
}

std::vector<NodeId> SndDeployment::deploy_round(std::size_t n) {
  const auto positions = sim::deploy_uniform(n, config_.field, deploy_rng_);
  std::vector<NodeId> identities;
  identities.reserve(n);
  for (const util::Vec2& position : positions) identities.push_back(deploy_node_at(position));
  return identities;
}

NodeId SndDeployment::deploy_node_at(util::Vec2 position) {
  const NodeId identity = next_identity_++;
  const sim::DeviceId device = network_->add_device(identity, position);
  auto agent = std::make_unique<SndNode>(*network_, device, identity, master_, verifier_, keys_,
                                         config_.protocol);
  agent->start();
  ensure_slot(device);
  agents_[device] = std::move(agent);
  return identity;
}

void SndDeployment::ensure_slot(sim::DeviceId device) {
  if (device >= agents_.size()) {
    agents_.resize(device + 1);
    boot_epochs_.resize(device + 1, 0);
  }
}

void SndDeployment::run() { network_->scheduler().run(); }

void SndDeployment::run_for(sim::Time duration) {
  network_->scheduler().run_until(network_->now() + duration);
}

SndNode* SndDeployment::agent_for_device(sim::DeviceId device) {
  return device < agents_.size() ? agents_[device].get() : nullptr;
}

SndNode* SndDeployment::agent(NodeId identity) {
  for (sim::DeviceId device = 0; device < agents_.size(); ++device) {
    SndNode* agent = agents_[device].get();
    if (agent != nullptr && agent->identity() == identity && !network_->device(device).replica) {
      return agent;
    }
  }
  return nullptr;
}

const SndNode* SndDeployment::agent(NodeId identity) const {
  for (sim::DeviceId device = 0; device < agents_.size(); ++device) {
    const SndNode* agent = agents_[device].get();
    if (agent != nullptr && agent->identity() == identity && !network_->device(device).replica) {
      return agent;
    }
  }
  return nullptr;
}

std::vector<const SndNode*> SndDeployment::agents() const {
  std::vector<const SndNode*> out;
  out.reserve(agents_.size());
  for (const auto& agent : agents_) {
    if (agent != nullptr) out.push_back(agent.get());
  }
  return out;
}

std::unique_ptr<SndNode> SndDeployment::detach_agent(sim::DeviceId device) {
  if (device >= agents_.size() || agents_[device] == nullptr) return nullptr;
  std::unique_ptr<SndNode> agent = std::move(agents_[device]);
  agent->stop();
  return agent;
}

void SndDeployment::kill_device(sim::DeviceId device) {
  network_->device(device).alive = false;
  if (SndNode* agent = agent_for_device(device)) agent->stop();
}

namespace {

void trace_inject(sim::Network& network, obs::InjectKind kind, NodeId node) {
  obs::Tracer& tracer = network.tracer();
  if (!tracer.active()) return;
  tracer.emit(obs::Event{.kind = obs::EventKind::kInject,
                         .code = static_cast<std::uint8_t>(kind),
                         .node = node,
                         .t_ns = network.now().ns()});
}

}  // namespace

sim::DeviceId SndDeployment::original_device(NodeId identity) const {
  for (const sim::Device& d : network_->devices()) {
    if (d.identity == identity && !d.replica) return d.id;
  }
  return sim::kNoDevice;
}

void SndDeployment::apply_fault_plan(const fault::FaultPlan& plan) {
  injector_ = std::make_unique<fault::Injector>(plan);
  network_->set_fault_hook(injector_.get());
  for (const fault::Injector::Lifecycle& action : injector_->lifecycle_actions()) {
    // A fire time already in the past executes at the current instant.
    const sim::Time at = std::max(network_->now(), sim::Time::nanoseconds(action.at_ns));
    const NodeId node = action.node;
    if (action.kind == fault::ActionKind::kCrash) {
      network_->scheduler().schedule_at(at, [this, node]() { crash_node(node); });
    } else {
      network_->scheduler().schedule_at(at, [this, node]() { reboot_node(node); });
    }
  }
}

bool SndDeployment::crash_node(NodeId identity) {
  const sim::DeviceId device = original_device(identity);
  if (device == sim::kNoDevice) return false;
  kill_device(device);
  trace_inject(*network_, obs::InjectKind::kCrash, identity);
  return true;
}

bool SndDeployment::reboot_node(NodeId identity) {
  const sim::DeviceId device = original_device(identity);
  if (device == sim::kNoDevice) return false;
  network_->device(device).alive = true;
  if (config_.energy.enabled) network_->set_energy_j(device, config_.energy.initial_j);
  // Destroy the old incarnation first: its stop() deregisters the radio
  // receiver, which must not clobber the fresh agent's registration.
  ensure_slot(device);
  agents_[device].reset();
  const std::uint32_t epoch = ++boot_epochs_[device];
  auto agent = std::make_unique<SndNode>(*network_, device, identity, master_, verifier_, keys_,
                                         config_.protocol, epoch);
  agent->start();
  agents_[device] = std::move(agent);
  trace_inject(*network_, obs::InjectKind::kReboot, identity);
  return true;
}

std::uint32_t SndDeployment::boot_epoch(sim::DeviceId device) const {
  return device < boot_epochs_.size() ? boot_epochs_[device] : 0;
}

topology::Digraph SndDeployment::actual_benign_graph() const {
  topology::Digraph graph;
  for (const sim::Device& a : network_->devices()) {
    if (!a.benign() || !a.alive) continue;
    graph.add_node(a.identity);
    // Grid-indexed neighbor query (id-ordered, alive-filtered) instead of a
    // second pass over every device -- this audit runs per trial on fields
    // where the O(n^2) scan rivaled the simulation itself.
    for (const sim::DeviceId b : network_->devices_in_range(a.id)) {
      const sim::Device& device = network_->device(b);
      if (device.benign()) graph.add_edge(a.identity, device.identity);
    }
  }
  return graph;
}

topology::Digraph SndDeployment::tentative_graph() const {
  topology::Digraph graph;
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;
    graph.add_node(agent->identity());
    for (NodeId v : agent->tentative_neighbors()) graph.add_edge(agent->identity(), v);
  }
  return graph;
}

topology::Digraph SndDeployment::functional_graph() const {
  topology::Digraph graph;
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;
    graph.add_node(agent->identity());
    for (NodeId v : agent->functional_neighbors()) graph.add_edge(agent->identity(), v);
  }
  return graph;
}

}  // namespace snd::core
