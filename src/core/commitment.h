// The protocol's cryptographic derivations (paper §4.1), all instances of
// the one-way hash H:
//
//   verification key   K_u    = H(K | u)
//   binding commitment C(u)   = H(K | i | N(u) | u)     (i = record version)
//   relation commit    C(u,v) = H(K_v | u)
//   update evidence    E(u,v) = H(K | u | v | i)
//
// Each derivation is domain-separated by a label and length-framed, so no
// two of them can collide even on crafted inputs.
//
// Each derivation also has a batched form that drains one crypto::HashBatch
// through the multi-buffer engine; the scalar and batched variants absorb
// through the same templated helpers, so the outputs are bit-identical by
// construction (and cost the same hash-op count).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/key.h"
#include "crypto/sha256.h"
#include "topology/graph.h"
#include "util/ids.h"

namespace snd::core {

/// K_u = H(K | u): computed by every node at initialization and kept
/// forever; only holders of the master key K can recompute it.
crypto::SymmetricKey verification_key(const crypto::SymmetricKey& master, NodeId node);

/// C(u) = H(K | version | N(u) | u): binds node u to its tentative
/// neighborhood. Only verifiable/creatable while K is held.
crypto::Digest binding_commitment(const crypto::SymmetricKey& master, NodeId node,
                                  std::uint32_t version, const topology::NeighborList& neighbors);

/// C(u, v) = H(K_v | u): proves u was newly deployed (it derived K_v from
/// K) and selected v as a functional neighbor.
crypto::Digest relation_commitment(const crypto::SymmetricKey& verification_key_of_v, NodeId u);

/// E(u, v) = H(K | u | v | i): evidence from (newly deployed) u that it
/// considers v a tentative neighbor while v's record is at version i.
crypto::Digest relation_evidence(const crypto::SymmetricKey& master, NodeId u, NodeId v,
                                 std::uint32_t version);

/// Batched K_v derivation: one output per node in `nodes` (same length).
void verification_keys(const crypto::SymmetricKey& master, std::span<const NodeId> nodes,
                       std::span<crypto::SymmetricKey> out);

/// Batched C(u, v) for one claimant u against many verification keys.
void relation_commitments(std::span<const crypto::SymmetricKey> verification_keys_of_v, NodeId u,
                          std::span<crypto::Digest> out);

/// One E(u, v) derivation of a batch.
struct EvidenceSpec {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  std::uint32_t version = 0;
};

/// Batched E(u, v) derivation: one output per spec (same length).
void relation_evidences(const crypto::SymmetricKey& master, std::span<const EvidenceSpec> specs,
                        std::span<crypto::Digest> out);

/// One C(u) derivation of a batch; `neighbors` must outlive the call.
struct BindingSpec {
  NodeId node = kNoNode;
  std::uint32_t version = 0;
  const topology::NeighborList* neighbors = nullptr;
};

/// Batched C(u) derivation: one output per spec (same length).
void binding_commitments(const crypto::SymmetricKey& master, std::span<const BindingSpec> specs,
                         std::span<crypto::Digest> out);

}  // namespace snd::core
