// Empirical d-safety measurement (Definition 6). For every compromised
// identity, the auditor gathers the benign nodes that accepted it as a
// functional neighbor -- across the original device and all replicas -- and
// computes the minimum enclosing circle of their positions. The identity
// satisfies d-safety iff that circle's radius is <= d. Theorem 3 predicts
// d = 2R with <= t compromised nodes; Theorem 4 predicts d = (m+1)R under
// the update extension.
#pragma once

#include <vector>

#include "core/deployment_driver.h"
#include "util/geometry.h"
#include "util/ids.h"

namespace snd::core {

struct IdentitySafetyReport {
  NodeId identity = kNoNode;
  /// Benign nodes whose functional list contains `identity`.
  std::vector<NodeId> accepting_nodes;
  /// Minimum enclosing circle of the accepting nodes' positions.
  util::Circle impact_circle;
  bool violates = false;

  [[nodiscard]] double impact_radius() const { return impact_circle.radius; }
};

struct SafetyReport {
  double required_radius = 0.0;  // the d that was checked
  std::vector<IdentitySafetyReport> identities;

  [[nodiscard]] bool holds() const;
  [[nodiscard]] std::size_t violation_count() const;
  /// Largest impact radius over all compromised identities (0 if none).
  [[nodiscard]] double max_impact_radius() const;
};

/// Audits d-safety for every compromised identity in the deployment.
SafetyReport audit_safety(const SndDeployment& deployment, double d);

/// Impact report for one specific identity (compromised or not).
IdentitySafetyReport audit_identity(const SndDeployment& deployment, NodeId identity, double d);

}  // namespace snd::core
