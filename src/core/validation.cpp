#include "core/validation.h"

namespace snd::core {

bool meets_threshold(const topology::NeighborList& nu, const topology::NeighborList& nv,
                     std::size_t t) {
  return topology::intersection_size(nu, nv) >= t + 1;
}

bool CommonNeighborValidator::validate(NodeId u, NodeId v, const topology::Digraph& B) const {
  return meets_threshold(B.successor_list(u), B.successor_list(v), t_);
}

ValidationFunction::MinimumDeployment CommonNeighborValidator::minimum_deployment(
    NodeId first_id) const {
  MinimumDeployment deployment;
  deployment.u = first_id;
  deployment.w = first_id + 1;
  deployment.graph.add_node(deployment.u);
  deployment.graph.add_node(deployment.w);
  for (std::size_t i = 0; i <= t_; ++i) {
    const NodeId common = first_id + 2 + static_cast<NodeId>(i);
    deployment.graph.add_edge(deployment.u, common);
    deployment.graph.add_edge(deployment.w, common);
    // Common neighbors see both endpoints back (physical links are mutual).
    deployment.graph.add_edge(common, deployment.u);
    deployment.graph.add_edge(common, deployment.w);
  }
  deployment.graph.add_edge(deployment.u, deployment.w);
  deployment.graph.add_edge(deployment.w, deployment.u);
  return deployment;
}

std::string CommonNeighborValidator::name() const {
  return "common-neighbor(t=" + std::to_string(t_) + ")";
}

bool LinkThresholdValidator::validate(NodeId u, NodeId v, const topology::Digraph& B) const {
  return B.has_edge(u, v) &&
         meets_threshold(B.successor_list(u), B.successor_list(v), t_);
}

ValidationFunction::MinimumDeployment LinkThresholdValidator::minimum_deployment(
    NodeId first_id) const {
  // The CommonNeighborValidator witness already links u and w directly, so
  // it satisfies the extra has_edge conjunct as-is.
  return CommonNeighborValidator(t_).minimum_deployment(first_id);
}

std::string LinkThresholdValidator::name() const {
  return "link-threshold(t=" + std::to_string(t_) + ")";
}

}  // namespace snd::core
