// Tunables for the localized neighbor validation protocol (paper §4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace snd::core {

struct ProtocolConfig {
  /// The security threshold t: a functional relation requires at least t+1
  /// shared tentative neighbors. Theorem 3 tolerates up to t compromised
  /// nodes. The central accuracy/security trade-off (Figures 3-4).
  std::size_t threshold_t = 10;

  /// m: maximum number of binding-record updates (§4.4 extension).
  /// 0 disables the extension entirely. Theorem 4 gives (m+1)R-safety.
  std::uint32_t max_updates = 0;

  /// How long a freshly deployed node collects HelloAcks before freezing
  /// its tentative neighbor list N(u).
  sim::Time discovery_window = sim::Time::milliseconds(200);

  /// Additional time for collecting binding records before the threshold
  /// check runs and relation commitments go out.
  sim::Time exchange_window = sim::Time::milliseconds(300);

  /// With the update extension on, how long after validation a new node
  /// keeps K alive to serve update requests. K is erased at
  /// deploy + discovery_window + exchange_window + update_service_window.
  sim::Time update_service_window = sim::Time::milliseconds(100);

  /// Early key erasure -- the paper's second future-work direction (§6):
  /// "delete the master key K quickly without waiting for the completion of
  /// neighbor discovery". When enabled, a node runs validation and erases K
  /// the moment a verified binding record has arrived from every tentative
  /// neighbor, instead of sitting out the full exchange window. The window
  /// timer remains as a fallback for neighbors that never answer. Shrinks
  /// the interval in which a physical capture yields K (measured by the
  /// key_exposure bench) at the cost of serving fewer record updates.
  bool early_erasure = false;

  /// Hello broadcast repetition (robustness against channel loss).
  std::size_t hello_repeats = 2;
  sim::Time hello_spacing = sim::Time::milliseconds(25);
  /// Max random delay before the first Hello.
  sim::Time hello_jitter = sim::Time::milliseconds(10);

  /// Max uniform per-message delay applied to the record-request burst,
  /// the record broadcast, and the commitment/evidence burst. Every node in
  /// a round hits its window edges at the same instant; without this
  /// desynchronization a half-duplex channel loses most of the exchange to
  /// collisions (MAC backoff in miniature).
  sim::Time tx_jitter = sim::Time::milliseconds(60);
};

}  // namespace snd::core
