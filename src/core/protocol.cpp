#include "core/protocol.h"

#include <algorithm>
#include <vector>

#include "core/validation.h"

namespace snd::core {

namespace {

/// Emits one protocol event through the network's tracer. `code` is any of
/// the kind-discriminated enums; `bytes` carries small counts (list sizes).
template <typename Code>
void trace_event(sim::Network& network, NodeId node, obs::EventKind kind, Code code,
                 NodeId peer = kNoNode, std::uint32_t bytes = 0) {
  obs::Tracer& tracer = network.tracer();
  if (!tracer.active()) return;
  tracer.emit(obs::Event{.kind = kind,
                         .code = static_cast<std::uint8_t>(code),
                         .node = node,
                         .peer = peer,
                         .bytes = bytes,
                         .t_ns = network.now().ns()});
}

}  // namespace

SndNode::SndNode(sim::Network& network, sim::DeviceId device, NodeId identity,
                 const crypto::SymmetricKey& master_key,
                 std::shared_ptr<verify::DirectVerifier> verifier,
                 std::shared_ptr<crypto::KeyPredistribution> keys, ProtocolConfig config,
                 std::uint32_t boot_epoch)
    : network_(network),
      device_(device),
      identity_(identity),
      master_(master_key),
      verification_key_(verification_key(master_key, identity)),
      verifier_(std::move(verifier)),
      keys_(keys),
      config_(config),
      messenger_(network, device, identity, std::move(keys), boot_epoch) {
  keys_->provision(identity);
}

SndNode::~SndNode() { stop(); }

void SndNode::schedule(sim::Time at, sim::EventAction action) {
  pending_events_.push_back(network_.scheduler().schedule_at(at, std::move(action)));
}

sim::Time SndNode::skewed(sim::Time delay) const {
  const sim::FaultHook* hook = network_.fault_hook();
  if (hook == nullptr || !hook->skews_timers()) return delay;
  const double drift = hook->timer_drift(identity_);
  if (drift == 1.0) return delay;
  return sim::Time::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(delay.ns()) * drift));
}

sim::Time SndNode::jittered_now() {
  const auto max_ns = static_cast<double>(config_.tx_jitter.ns());
  // The RNG draw happens unconditionally (and first) so armed skew never
  // changes the shared stream's consumption order.
  const auto jitter =
      sim::Time::nanoseconds(static_cast<std::int64_t>(network_.rng().uniform(0.0, max_ns)));
  return network_.now() + skewed(jitter);
}

void SndNode::start() {
  if (started_) return;
  started_ = true;
  deployed_at_ = network_.now();
  trace_event(network_, identity_, obs::EventKind::kPhase, obs::NodePhase::kDeployed);

  network_.set_receiver(device_, [this](const sim::Packet& packet) { on_packet(packet); });

  const sim::Time jitter = sim::Time::nanoseconds(static_cast<std::int64_t>(
      network_.rng().uniform(0.0, static_cast<double>(config_.hello_jitter.ns()))));
  schedule(network_.now() + skewed(jitter), [this]() { send_hellos(config_.hello_repeats); });
  schedule(network_.now() + skewed(config_.discovery_window), [this]() { finish_discovery(); });
  schedule(network_.now() + skewed(config_.discovery_window + config_.exchange_window),
           [this]() { run_validation(); });
}

void SndNode::stop() {
  network_.set_receiver(device_, nullptr);
  for (sim::EventId id : pending_events_) network_.scheduler().cancel(id);
  pending_events_.clear();
}

void SndNode::send_hellos(std::size_t remaining) {
  if (remaining == 0 || discovery_complete_) return;
  messenger_.broadcast(static_cast<std::uint8_t>(MessageType::kHello), {}, obs::Phase::kHello);
  schedule(network_.now() + skewed(config_.hello_spacing),
           [this, remaining]() { send_hellos(remaining - 1); });
}

void SndNode::on_packet(const sim::Packet& packet) {
  if (packet.src == identity_) return;  // our own identity (e.g. a replica)

  switch (static_cast<MessageType>(packet.type)) {
    case MessageType::kHello:
      on_hello(packet);
      return;
    case MessageType::kHelloAck:
      on_hello_ack(packet);
      return;
    default:
      break;
  }

  // Record replies are local broadcasts: the record is self-authenticating
  // (its commitment verifies under K), so one transmission serves every
  // requester in range.
  if (static_cast<MessageType>(packet.type) == MessageType::kRecordReply) {
    on_record_reply(packet, packet.payload);
    return;
  }

  // Everything else is authenticated unicast. A failed open() on a packet
  // actually addressed to us is an authentication/replay reject; overheard
  // unicasts for other identities return nullopt too and are not rejects.
  const auto payload = messenger_.open(packet);
  if (!payload) {
    if (packet.dst == identity_) {
      trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kAuthFailed,
                  packet.src);
    }
    return;
  }

  switch (static_cast<MessageType>(packet.type)) {
    case MessageType::kRecordRequest:
      on_record_request(packet);
      break;
    case MessageType::kRelationCommit:
      on_relation_commit(packet, *payload);
      break;
    case MessageType::kEvidence:
      on_evidence(packet, *payload);
      break;
    case MessageType::kUpdateRequest:
      on_update_request(packet, *payload);
      break;
    case MessageType::kUpdateReply:
      on_update_reply(packet, *payload);
      break;
    default:
      break;
  }
}

void SndNode::on_hello(const sim::Packet& packet) {
  // Make ourselves discoverable to the new node (once per identity --
  // repeated Hellos from the same node need no duplicate ACKs).
  if (acked_identities_.insert(packet.src)) {
    messenger_.send_unauth(packet.src, static_cast<std::uint8_t>(MessageType::kHelloAck), {},
                           obs::Phase::kAck);
  }
  // If we are still discovering, a Hello also reveals a candidate neighbor.
  consider_tentative(packet);

  // Update extension: a Hello marks a freshly deployed node that still
  // holds K and can re-issue our binding record.
  if (auto_update_ && validated_) request_update(packet.src);
}

void SndNode::on_hello_ack(const sim::Packet& packet) { consider_tentative(packet); }

void SndNode::consider_tentative(const sim::Packet& packet) {
  if (!started_ || discovery_complete_) return;
  if (topology::contains(tentative_, packet.src)) return;
  // Direct verification is a (potentially expensive) challenge-response:
  // it runs once per candidate identity and the verdict is remembered, not
  // re-rolled for every overheard packet.
  const bool* cached = verification_cache_.find(packet.src);
  bool accepted;
  if (cached != nullptr) {
    accepted = *cached;
  } else {
    accepted = verifier_->verify(network_, device_, packet.sender_device, packet.src);
    verification_cache_.try_emplace(packet.src, accepted);
  }
  if (!accepted) return;
  topology::insert_sorted(tentative_, packet.src);
}

void SndNode::finish_discovery() {
  if (discovery_complete_) return;
  discovery_complete_ = true;

  record_ = BindingRecord::make(master_, identity_, 0, tentative_);
  trace_event(network_, identity_, obs::EventKind::kPhase, obs::NodePhase::kDiscoveryDone,
              kNoNode, static_cast<std::uint32_t>(tentative_.size()));

  // Serve record requests that raced ahead of our record creation.
  if (pending_record_request_) broadcast_record();
  pending_record_request_ = false;

  // Collect the binding record of every tentative neighbor. Every node in
  // the round hits this point simultaneously, so requests are individually
  // jittered to avoid a synchronized burst.
  for (NodeId v : tentative_) {
    schedule(jittered_now(), [this, v]() {
      messenger_.send(v, static_cast<std::uint8_t>(MessageType::kRecordRequest), {},
                      obs::Phase::kRecord);
    });
  }
}

void SndNode::on_record_request(const sim::Packet& packet) {
  (void)packet;
  if (!record_) {
    pending_record_request_ = true;
    return;
  }
  // Requests burst in together (all new neighbors finish discovery at the
  // same window edge); aggregate them into a single, jittered broadcast
  // reply.
  if (record_broadcast_scheduled_) return;
  record_broadcast_scheduled_ = true;
  schedule(jittered_now() + skewed(sim::Time::milliseconds(20)),
           [this]() { broadcast_record(); });
}

void SndNode::broadcast_record() {
  record_broadcast_scheduled_ = false;
  if (!record_) return;
  messenger_.broadcast(static_cast<std::uint8_t>(MessageType::kRecordReply),
                       record_->serialize(), obs::Phase::kRecord);
}

void SndNode::on_record_reply(const sim::Packet& packet, std::span<const std::uint8_t> payload) {
  if (validated_ || !master_.present()) return;
  // Only records of tentative neighbors matter (bounds memory under chaff).
  if (!topology::contains(tentative_, packet.src)) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kNotTentative,
                packet.src);
    return;
  }
  const auto reply = RecordReplyPayload::parse(payload);
  if (!reply) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kParseError,
                packet.src);
    return;
  }
  const BindingRecord& record = reply->record;
  if (record.node != packet.src) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kWrongSubject,
                packet.src);
    return;
  }
  if (!record.verify(master_)) {  // forged or corrupted commitment
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kBadCommitment,
                packet.src);
    return;
  }

  // Keep the highest version. The broadcast channel lets anyone replay an
  // OLD (still commitment-valid) record of a node that has since updated;
  // preferring the higher version neutralizes that substitution, and the
  // adversary cannot mint higher versions without K.
  const BindingRecord* existing = neighbor_records_.find(record.node);
  if (existing != nullptr && existing->version >= record.version) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kStaleVersion,
                packet.src);
    return;
  }
  neighbor_records_.insert_or_assign(record.node, record);

  // Early-erasure variant (§6): every tentative neighbor has answered, so
  // there is nothing left that needs K -- validate and erase immediately
  // rather than waiting out the exchange window.
  if (config_.early_erasure && discovery_complete_ &&
      neighbor_records_.size() == tentative_.size()) {
    run_validation();
  }
}

void SndNode::run_validation() {
  if (validated_) return;
  validated_ = true;

  // Phase A -- decide. Trace emission and functional_ insertion happen in
  // the original per-neighbor order; surviving peers are queued for the
  // batched derivations below.
  struct PendingPeer {
    NodeId v;
    const BindingRecord* record;
    bool accepted;
  };
  std::vector<PendingPeer> pending;
  pending.reserve(tentative_.size());
  for (NodeId v : tentative_) {
    const BindingRecord* found = neighbor_records_.find(v);
    if (found == nullptr) {
      trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kNoRecord, v);
      continue;
    }
    const bool accepted = meets_threshold(tentative_, found->neighbors, config_.threshold_t);
    if (accepted) {
      topology::insert_sorted(functional_, v);
      trace_event(network_, identity_, obs::EventKind::kAccept, obs::AcceptVia::kThreshold, v);
    } else {
      trace_event(network_, identity_, obs::EventKind::kReject,
                  obs::RejectReason::kThresholdNotMet, v);
    }
    pending.push_back({v, found, accepted});
  }

  // Phase B -- derive. All of the round's commitments and evidences are
  // computed now, while K is in hand, in batched drains of the multi-buffer
  // hash engine (bit-identical to the scalar derivations and the same
  // hash-op count; see core/commitment.h).
  std::vector<NodeId> accepted_ids;
  for (const PendingPeer& p : pending) {
    if (p.accepted) accepted_ids.push_back(p.v);
  }
  std::vector<crypto::SymmetricKey> vkeys(accepted_ids.size());
  std::vector<crypto::Digest> commits(accepted_ids.size());
  verification_keys(master_, accepted_ids, vkeys);
  relation_commitments(vkeys, identity_, commits);

  // Extension: leave evidence with every tentative neighbor so a future
  // new deployment can re-issue their records including us.
  std::vector<crypto::Digest> evidences(config_.max_updates > 0 ? pending.size() : 0);
  if (config_.max_updates > 0) {
    std::vector<EvidenceSpec> specs;
    specs.reserve(pending.size());
    for (const PendingPeer& p : pending) {
      specs.push_back({identity_, p.v, p.record->version});
    }
    relation_evidences(master_, specs, evidences);
  }

  // Phase C -- transmit. The whole round goes on the air as one jittered
  // burst (commit then evidence per neighbor, in the decision order) whose
  // MACs also drain wide through Messenger::send_many. Payloads are
  // serialized now: neighbor_records_ is cleared before the burst fires.
  std::vector<Messenger::Outgoing> burst;
  std::size_t commit_index = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingPeer& p = pending[i];
    if (p.accepted) {
      burst.push_back({p.v, static_cast<std::uint8_t>(MessageType::kRelationCommit),
                       RelationCommitPayload{commits[commit_index]}.serialize(),
                       obs::Phase::kCommit});
      ++commit_index;
    }
    if (config_.max_updates > 0) {
      burst.push_back({p.v, static_cast<std::uint8_t>(MessageType::kEvidence),
                       EvidencePayload{p.record->version, evidences[i]}.serialize(),
                       obs::Phase::kEvidence});
    }
  }
  if (!burst.empty()) {
    schedule(jittered_now(),
             [this, burst = std::move(burst)]() { messenger_.send_many(burst); });
  }

  trace_event(network_, identity_, obs::EventKind::kPhase, obs::NodePhase::kValidated, kNoNode,
              static_cast<std::uint32_t>(functional_.size()));

  // Binding records of neighbors are no longer needed (paper §4.3).
  neighbor_records_.clear();

  if (config_.max_updates > 0) {
    // Keep K alive briefly to serve update requests, then erase.
    schedule(network_.now() + skewed(config_.update_service_window),
             [this]() { erase_master_key(); });
  } else {
    erase_master_key();
  }
}

void SndNode::erase_master_key() {
  if (master_.present()) {
    master_.erase();
    erased_at_ = network_.now();
    trace_event(network_, identity_, obs::EventKind::kPhase, obs::NodePhase::kKeyErased);
  }
}

sim::Time SndNode::key_exposure() const {
  return (erased_at_ ? *erased_at_ : network_.now()) - deployed_at_;
}

void SndNode::on_relation_commit(const sim::Packet& packet,
                                 std::span<const std::uint8_t> payload) {
  const auto commit = RelationCommitPayload::parse(payload);
  if (!commit) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kParseError,
                packet.src);
    return;
  }
  // Only a node that held K (i.e. one that was newly deployed) can compute
  // C(x, us) = H(K_us | x); our own K_us verifies it.
  if (commit->commitment != relation_commitment(verification_key_, packet.src)) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kCommitMismatch,
                packet.src);
    return;
  }
  topology::insert_sorted(functional_, packet.src);
  trace_event(network_, identity_, obs::EventKind::kAccept, obs::AcceptVia::kCommitment,
              packet.src);
}

void SndNode::on_evidence(const sim::Packet& packet, std::span<const std::uint8_t> payload) {
  if (config_.max_updates == 0 || !record_) return;
  const auto evidence = EvidencePayload::parse(payload);
  if (!evidence) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kParseError,
                packet.src);
    return;
  }
  // Evidence must bind our *current* record version; we cannot check the
  // digest itself (K is gone) -- the update server will.
  if (evidence->record_version != record_->version) {
    trace_event(network_, identity_, obs::EventKind::kReject,
                obs::RejectReason::kVersionMismatch, packet.src);
    return;
  }
  evidence_buffer_.insert_or_assign(packet.src, evidence->evidence);
}

bool SndNode::request_update(NodeId server) {
  if (config_.max_updates == 0 || !record_) return false;
  if (record_->version >= config_.max_updates) return false;

  UpdateRequestPayload request{*record_, {}};
  for (const auto& [issuer, digest] : evidence_buffer_) {
    if (!topology::contains(record_->neighbors, issuer)) {
      request.evidences.emplace_back(issuer, digest);
    }
  }
  if (request.evidences.empty()) return false;

  ++updates_requested_;
  return messenger_.send(server, static_cast<std::uint8_t>(MessageType::kUpdateRequest),
                         request.serialize(), obs::Phase::kUpdate);
}

void SndNode::on_update_request(const sim::Packet& packet,
                                std::span<const std::uint8_t> payload) {
  // Only a newly deployed node still holding K can serve updates.
  if (!master_.present() || config_.max_updates == 0) return;
  const auto request = UpdateRequestPayload::parse(payload);
  if (!request) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kParseError,
                packet.src);
    return;
  }
  const BindingRecord& old_record = request->record;
  if (old_record.node != packet.src || !old_record.verify(master_) ||
      old_record.version >= config_.max_updates) {  // cap reached (§4.4)
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kUpdateRefused,
                packet.src);
    return;
  }

  topology::NeighborList updated = old_record.neighbors;

  // Precompute the expected evidences in one wide hash drain. Only safe
  // when no issuer repeats: with duplicates, the scalar loop's "already in
  // `updated`" check depends on earlier insertions, so fall back to
  // deriving inside the loop. Either way the derivations (and hash-op
  // counts) are exactly the ones the scalar loop performs.
  std::vector<const crypto::Digest*> expected(request->evidences.size(), nullptr);
  std::vector<crypto::Digest> batch_digests;
  {
    std::vector<NodeId> issuers;
    issuers.reserve(request->evidences.size());
    for (const auto& [issuer, digest] : request->evidences) issuers.push_back(issuer);
    std::sort(issuers.begin(), issuers.end());
    const bool unique = std::adjacent_find(issuers.begin(), issuers.end()) == issuers.end();
    if (unique) {
      std::vector<EvidenceSpec> specs;
      std::vector<std::size_t> where;
      for (std::size_t i = 0; i < request->evidences.size(); ++i) {
        const NodeId issuer = request->evidences[i].first;
        if (topology::contains(updated, issuer)) continue;
        specs.push_back({issuer, old_record.node, old_record.version});
        where.push_back(i);
      }
      batch_digests.resize(specs.size());
      relation_evidences(master_, specs, batch_digests);
      for (std::size_t j = 0; j < where.size(); ++j) expected[where[j]] = &batch_digests[j];
    }
  }

  bool any_verified = false;
  for (std::size_t i = 0; i < request->evidences.size(); ++i) {
    const auto& [issuer, digest] = request->evidences[i];
    if (topology::contains(updated, issuer)) continue;
    const crypto::Digest want =
        expected[i] != nullptr
            ? *expected[i]
            : relation_evidence(master_, issuer, old_record.node, old_record.version);
    if (digest != want) {
      continue;  // unverifiable claim; skip it, keep the rest
    }
    topology::insert_sorted(updated, issuer);
    any_verified = true;
  }
  if (!any_verified) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kUpdateRefused,
                packet.src);
    return;
  }

  const BindingRecord updated_record =
      BindingRecord::make(master_, old_record.node, old_record.version + 1, std::move(updated));
  messenger_.send(packet.src, static_cast<std::uint8_t>(MessageType::kUpdateReply),
                  updated_record.serialize(), obs::Phase::kUpdate);
}

void SndNode::on_update_reply(const sim::Packet& packet, std::span<const std::uint8_t> payload) {
  if (config_.max_updates == 0 || !record_) return;
  const auto reply = UpdateReplyPayload::parse(payload);
  if (!reply) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kParseError,
                packet.src);
    return;
  }
  const BindingRecord& updated = reply->record;
  if (updated.node != identity_) {
    trace_event(network_, identity_, obs::EventKind::kReject, obs::RejectReason::kWrongSubject,
                packet.src);
    return;
  }
  if (updated.version != record_->version + 1) {
    trace_event(network_, identity_, obs::EventKind::kReject,
                obs::RejectReason::kVersionMismatch, packet.src);
    return;
  }
  // We cannot re-verify the commitment (K is erased); authenticity rests on
  // the pairwise-authenticated channel to the newly deployed server.
  record_ = updated;
  // All buffered evidence was bound to the previous version; new evidence
  // must cite the new version number (§4.4).
  evidence_buffer_.clear();
}

SndNode::Secrets SndNode::steal_secrets() const {
  Secrets secrets;
  secrets.master = master_;  // copies only if still present
  secrets.verification_key = verification_key_;
  secrets.record = record_;
  secrets.tentative = tentative_;
  secrets.functional = functional_;
  for (const auto& [issuer, digest] : evidence_buffer_) {
    secrets.evidence_buffer.emplace(issuer, digest);
  }
  return secrets;
}

}  // namespace snd::core
