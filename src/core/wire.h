// Wire formats for the protocol's eight message types. Payloads are
// hand-serialized (big-endian, length-prefixed) and every parse is
// bounds-checked: a malformed packet from the adversary must fail cleanly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/binding_record.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace snd::core {

enum class MessageType : std::uint8_t {
  kHello = 1,          // broadcast: "identity u is here, discovering"
  kHelloAck = 2,       // reply to a Hello, making the sender discoverable
  kRecordRequest = 3,  // u asks tentative neighbor v for R(v)
  kRecordReply = 4,    // v returns R(v)
  kRelationCommit = 5, // u -> v: C(u,v), establishing the functional relation
  kEvidence = 6,       // u -> old node v: E(u,v) for future record updates
  kUpdateRequest = 7,  // old v -> new u: R(v) + buffered evidences
  kUpdateReply = 8,    // new u -> v: re-issued R(v)
};

struct RecordReplyPayload {
  BindingRecord record;

  [[nodiscard]] util::Bytes serialize() const { return record.serialize(); }
  static std::optional<RecordReplyPayload> parse(std::span<const std::uint8_t> data);
};

struct RelationCommitPayload {
  crypto::Digest commitment;  // C(u, v); u = packet src, v = packet dst

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<RelationCommitPayload> parse(std::span<const std::uint8_t> data);
};

struct EvidencePayload {
  std::uint32_t record_version = 0;  // version of v's record the evidence binds
  crypto::Digest evidence;           // E(u, v)

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<EvidencePayload> parse(std::span<const std::uint8_t> data);
};

struct UpdateRequestPayload {
  BindingRecord record;
  std::vector<std::pair<NodeId, crypto::Digest>> evidences;  // (issuer x, E(x, v))

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<UpdateRequestPayload> parse(std::span<const std::uint8_t> data);
};

struct UpdateReplyPayload {
  BindingRecord record;

  [[nodiscard]] util::Bytes serialize() const { return record.serialize(); }
  static std::optional<UpdateReplyPayload> parse(std::span<const std::uint8_t> data);
};

}  // namespace snd::core
