#include "core/safety.h"

#include <algorithm>
#include <set>

namespace snd::core {

bool SafetyReport::holds() const { return violation_count() == 0; }

std::size_t SafetyReport::violation_count() const {
  return static_cast<std::size_t>(
      std::count_if(identities.begin(), identities.end(),
                    [](const IdentitySafetyReport& r) { return r.violates; }));
}

double SafetyReport::max_impact_radius() const {
  double max_radius = 0.0;
  for (const IdentitySafetyReport& r : identities) {
    max_radius = std::max(max_radius, r.impact_radius());
  }
  return max_radius;
}

IdentitySafetyReport audit_identity(const SndDeployment& deployment, NodeId identity, double d) {
  IdentitySafetyReport report;
  report.identity = identity;

  std::vector<util::Vec2> positions;
  const sim::Network& network = deployment.network();
  for (const SndNode* agent : deployment.agents()) {
    const sim::Device& device = network.device(agent->device());
    if (!device.benign()) continue;
    if (!topology::contains(agent->functional_neighbors(), identity)) continue;
    report.accepting_nodes.push_back(agent->identity());
    positions.push_back(device.position);
  }
  std::sort(report.accepting_nodes.begin(), report.accepting_nodes.end());

  report.impact_circle = util::minimum_enclosing_circle(positions);
  report.violates = report.impact_circle.radius > d + 1e-6;
  return report;
}

SafetyReport audit_safety(const SndDeployment& deployment, double d) {
  SafetyReport report;
  report.required_radius = d;

  std::set<NodeId> compromised;
  for (const sim::Device& device : deployment.network().devices()) {
    if (device.compromised) compromised.insert(device.identity);
  }
  for (NodeId identity : compromised) {
    report.identities.push_back(audit_identity(deployment, identity, d));
  }
  return report;
}

}  // namespace snd::core
