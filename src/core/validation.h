// The abstract neighbor validation function F(u, v, B) of Definition 3, and
// the topology-only threshold validator the impossibility results (Theorems
// 1 and 2) are demonstrated against.
//
// Definition 3 requires F to be isomorphism-invariant: relabeling all IDs
// consistently must not change any decision. Both implementations here are
// invariant by construction (they look only at graph structure); the
// property is checked by tests using Digraph::relabeled.
#pragma once

#include <cstddef>
#include <string>

#include "topology/graph.h"
#include "util/ids.h"

namespace snd::core {

class ValidationFunction {
 public:
  virtual ~ValidationFunction() = default;

  /// F(u, v, B): does u, knowing the tentative relations B, accept v as a
  /// functional neighbor?
  [[nodiscard]] virtual bool validate(NodeId u, NodeId v, const topology::Digraph& B) const = 0;

  /// |G_min(F)| (Definition 7): the fewest nodes in any graph on which F
  /// outputs 1 for some pair. Drives the Theorem 1 bound n >= 2m - 1.
  [[nodiscard]] virtual std::size_t minimum_deployment_size() const = 0;

  /// A witness minimum deployment: a graph of exactly
  /// minimum_deployment_size() nodes plus a pair (u, w) it accepts. Used by
  /// the Theorem 1 attack construction.
  struct MinimumDeployment {
    topology::Digraph graph;
    NodeId u = kNoNode;
    NodeId w = kNoNode;
  };
  [[nodiscard]] virtual MinimumDeployment minimum_deployment(NodeId first_id) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The threshold rule on its own -- u accepts v iff their tentative
/// neighbor lists in B share at least t+1 nodes -- with NO deployment-time
/// security behind it. This is exactly what the paper proves insufficient:
/// the adversary of Theorems 1/2 clones neighbor-list structure and
/// defeats it. The secure protocol (protocol.h) runs the same predicate but
/// over binding records that cannot be forged after K is erased.
class CommonNeighborValidator final : public ValidationFunction {
 public:
  explicit CommonNeighborValidator(std::size_t threshold_t) : t_(threshold_t) {}

  [[nodiscard]] bool validate(NodeId u, NodeId v, const topology::Digraph& B) const override;
  /// u, v, and t+1 shared neighbors.
  [[nodiscard]] std::size_t minimum_deployment_size() const override { return t_ + 3; }
  [[nodiscard]] MinimumDeployment minimum_deployment(NodeId first_id) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t threshold() const { return t_; }

 private:
  std::size_t t_;
};

/// The full functional-topology rule of Definition 5: u accepts v iff the
/// tentative relation u -> v exists AND the threshold predicate holds. This
/// is the F(u, v, B) the long-lived validation service (service/) serves:
/// CommonNeighborValidator alone would accept pairs that never heard each
/// other, which a functional topology by definition excludes.
class LinkThresholdValidator final : public ValidationFunction {
 public:
  explicit LinkThresholdValidator(std::size_t threshold_t) : t_(threshold_t) {}

  [[nodiscard]] bool validate(NodeId u, NodeId v, const topology::Digraph& B) const override;
  /// Same witness as CommonNeighborValidator (u and w are adjacent in it).
  [[nodiscard]] std::size_t minimum_deployment_size() const override { return t_ + 3; }
  [[nodiscard]] MinimumDeployment minimum_deployment(NodeId first_id) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t threshold() const { return t_; }

 private:
  std::size_t t_;
};

/// Shared threshold predicate: |N(u) ∩ N(v)| >= t + 1. Used by both the
/// graph-level validator above and the wire protocol's record check.
bool meets_threshold(const topology::NeighborList& nu, const topology::NeighborList& nv,
                     std::size_t t);

}  // namespace snd::core
