// Authenticated unicast transport over the broadcast radio.
//
// Implements the paper's blanket assumption that "the communication between
// any two nodes is encrypted and authenticated by their shared key, and a
// sequence number is used to remove replayed messages" (§2/§4), in a form
// that tolerates replicas: authentication is per-message (pairwise-key MAC
// over src|dst|type|payload|nonce) with a sliding-window replay cache
// rather than per-session counters, because a replica legitimately re-keys
// the same identity from a different radio.
//
// Hot path: pairwise keys and their HMAC midstates are memoized per peer
// (crypto::PairKeyCache) and the MAC input is streamed straight into the
// hash context, so a steady-state send()/open() does no key derivation and
// no heap allocation. The original derive-per-call implementation is kept
// as the slow path, selected by crypto::set_fast_path_enabled(false) /
// SND_CRYPTO_FAST=0; both paths produce bit-identical packets and accept
// decisions.
//
// Note the protocol's *security* does not rest on this layer -- binding
// records, relation commitments, and evidences are self-authenticating
// under K / K_v -- but the layer is faithful to the paper's cost model and
// shields the honest protocol from trivial spoofing.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "crypto/hmac.h"
#include "crypto/keypredist.h"
#include "crypto/session_cache.h"
#include "obs/event.h"
#include "sim/network.h"
#include "util/flat.h"
#include "util/ids.h"

namespace snd::core {

class Messenger {
 public:
  /// `identity` is the identity this endpoint speaks as (a replica speaks
  /// as its stolen identity). `boot_epoch` counts reboots of the device: a
  /// rebooted node loses its counter state, so each epoch starts its nonce
  /// counters 2^20 ahead of the previous one -- peers' replay windows see
  /// strictly fresh counters, while stale pre-reboot traffic replayed later
  /// still lands behind the window and is rejected.
  Messenger(sim::Network& network, sim::DeviceId device, NodeId identity,
            std::shared_ptr<crypto::KeyPredistribution> keys, std::uint32_t boot_epoch = 0);

  /// Sends an authenticated unicast. Returns false if no pairwise key with
  /// `to` could be established. Cost is charged to `phase`.
  bool send(NodeId to, std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// One message of a send_many() burst.
  struct Outgoing {
    NodeId to = kNoNode;
    std::uint8_t type = 0;
    util::Bytes payload;
    obs::Phase phase = obs::Phase::kOther;
  };

  /// Sends a burst of authenticated unicasts, exactly equivalent to calling
  /// send() on each element in order: same key-cache touch order, same
  /// nonce assignment (a message with no establishable pairwise key is
  /// skipped without consuming a nonce), same wire bytes, same transmit
  /// order. The difference is purely mechanical -- with the fast path and
  /// SND_SIMD on, the burst's MACs drain through the multi-buffer hash
  /// engine (inner contexts wide, then outer contexts over the inner
  /// digests). Returns the number of messages actually sent.
  std::size_t send_many(std::span<const Outgoing> messages);

  /// Broadcasts without per-pair authentication (Hello/HelloAck carry no
  /// secrets; authenticity of what matters is established end-to-end).
  void broadcast(std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// Addressed but unauthenticated send (HelloAck: the pairwise key may not
  /// be checkable yet and the content is covered by direct verification).
  void send_unauth(NodeId to, std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// Verifies an incoming unicast addressed to this identity: MAC check
  /// with the pairwise key for the claimed src, replay check on the nonce.
  /// Returns a view of the bare payload (aliasing `packet.payload`, valid
  /// while the packet is), or nullopt if the packet is not for us / fails
  /// authentication / is a replay.
  std::optional<std::span<const std::uint8_t>> open(const sim::Packet& packet);

  [[nodiscard]] NodeId identity() const { return identity_; }

  /// Per-message wire overhead added by send(): nonce + MAC.
  static constexpr std::size_t kAuthOverhead = 8 + crypto::kShortMacSize;

  /// Width of a replay window: out-of-order delivery within this many
  /// counter steps of the newest seen nonce is tolerated; older packets are
  /// rejected. Honest senders use strictly increasing counters, so only
  /// pathologically-delayed or replayed traffic lands outside the window.
  static constexpr std::uint64_t kReplayWindow = 64;

  /// Number of (peer, sender-device) replay windows held. Each is O(1)
  /// memory, so this -- not the message count -- bounds replay state.
  [[nodiscard]] std::size_t replay_window_count() const;

  /// Messages that authenticated but were rejected by the replay window
  /// (also charged to obs::DropCause::kReplay on the network's metrics).
  [[nodiscard]] std::uint64_t replay_rejects() const { return replay_rejects_; }

  /// Messages the replay window flagged as duplicates that were delivered
  /// anyway. Always 0 unless the kReplayWindowBypass planted bug is armed;
  /// the replay.never_accepted oracle audits it.
  [[nodiscard]] std::uint64_t replay_accepts() const { return replay_accepts_; }

  /// Per-epoch nonce-counter stride (see the constructor comment).
  static constexpr std::uint64_t kEpochStride = 1ULL << 20;

 private:
  /// Slow-path key derivation (the seed implementation), kept verbatim for
  /// fast/slow A-B verification.
  crypto::SymmetricKey pair_key(NodeId peer) const;

  /// IPsec-style sliding window over one sender-device's nonce counters:
  /// a 64-bit mask of recently seen counters below the highest seen.
  struct ReplayWindow {
    std::uint64_t highest = 0;
    std::uint64_t mask = 0;
    bool any = false;

    bool accept(std::uint64_t counter);
  };

  bool replay_accept(NodeId src, std::uint64_t nonce);

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId identity_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  crypto::PairKeyCache key_cache_;
  std::uint64_t nonce_counter_;
  std::uint64_t replay_rejects_ = 0;
  std::uint64_t replay_accepts_ = 0;
  /// Representation of the replay table, captured at construction (see
  /// util::soa_enabled()). Replay state is lookup-only -- nothing iterates
  /// it on a decision path -- so the two representations are trivially
  /// behavior-identical.
  const bool soa_;
  /// Nonces are (device << 32) + counter, so windows are keyed per
  /// (claimed src identity, sending device): replicas of one identity get
  /// independent windows and never collide. Seed representation.
  std::map<NodeId, std::map<std::uint32_t, ReplayWindow>> replay_windows_;
  /// Flat representation: one sorted array keyed (src << 32) | device.
  util::FlatMap<std::uint64_t, ReplayWindow> replay_windows_flat_;
};

}  // namespace snd::core
