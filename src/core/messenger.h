// Authenticated unicast transport over the broadcast radio.
//
// Implements the paper's blanket assumption that "the communication between
// any two nodes is encrypted and authenticated by their shared key, and a
// sequence number is used to remove replayed messages" (§2/§4), in a form
// that tolerates replicas: authentication is per-message (pairwise-key MAC
// over src|dst|type|payload|nonce) with a seen-nonce replay cache rather
// than per-session counters, because a replica legitimately re-keys the
// same identity from a different radio.
//
// Note the protocol's *security* does not rest on this layer -- binding
// records, relation commitments, and evidences are self-authenticating
// under K / K_v -- but the layer is faithful to the paper's cost model and
// shields the honest protocol from trivial spoofing.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "crypto/hmac.h"
#include "crypto/keypredist.h"
#include "obs/event.h"
#include "sim/network.h"
#include "util/ids.h"

namespace snd::core {

class Messenger {
 public:
  /// `identity` is the identity this endpoint speaks as (a replica speaks
  /// as its stolen identity).
  Messenger(sim::Network& network, sim::DeviceId device, NodeId identity,
            std::shared_ptr<crypto::KeyPredistribution> keys);

  /// Sends an authenticated unicast. Returns false if no pairwise key with
  /// `to` could be established. Cost is charged to `phase`.
  bool send(NodeId to, std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// Broadcasts without per-pair authentication (Hello/HelloAck carry no
  /// secrets; authenticity of what matters is established end-to-end).
  void broadcast(std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// Addressed but unauthenticated send (HelloAck: the pairwise key may not
  /// be checkable yet and the content is covered by direct verification).
  void send_unauth(NodeId to, std::uint8_t type, const util::Bytes& payload, obs::Phase phase);

  /// Verifies an incoming unicast addressed to this identity: MAC check
  /// with the pairwise key for the claimed src, replay check on the nonce.
  /// Returns the bare payload, or nullopt if the packet is not for us /
  /// fails authentication / is a replay.
  std::optional<util::Bytes> open(const sim::Packet& packet);

  [[nodiscard]] NodeId identity() const { return identity_; }

  /// Per-message wire overhead added by send(): nonce + MAC.
  static constexpr std::size_t kAuthOverhead = 8 + crypto::kShortMacSize;

 private:
  crypto::SymmetricKey pair_key(NodeId peer) const;

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId identity_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  std::uint64_t nonce_counter_;
  std::map<NodeId, std::set<std::uint64_t>> seen_nonces_;
};

}  // namespace snd::core
