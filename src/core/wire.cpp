#include "core/wire.h"

#include <algorithm>

namespace snd::core {

namespace {

void put_digest(util::Bytes& out, const crypto::Digest& digest) {
  util::put_bytes(out, digest.bytes);
}

std::optional<crypto::Digest> read_digest(util::ByteReader& reader) {
  const auto raw = reader.bytes_view(crypto::kDigestSize);
  if (!raw) return std::nullopt;
  crypto::Digest digest;
  std::copy(raw->begin(), raw->end(), digest.bytes.begin());
  return digest;
}

}  // namespace

std::optional<RecordReplyPayload> RecordReplyPayload::parse(std::span<const std::uint8_t> data) {
  auto record = BindingRecord::parse(data);
  if (!record) return std::nullopt;
  return RecordReplyPayload{std::move(*record)};
}

util::Bytes RelationCommitPayload::serialize() const {
  util::Bytes out;
  put_digest(out, commitment);
  return out;
}

std::optional<RelationCommitPayload> RelationCommitPayload::parse(
    std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  const auto digest = read_digest(reader);
  if (!digest || !reader.exhausted()) return std::nullopt;
  return RelationCommitPayload{*digest};
}

util::Bytes EvidencePayload::serialize() const {
  util::Bytes out;
  util::put_u32(out, record_version);
  put_digest(out, evidence);
  return out;
}

std::optional<EvidencePayload> EvidencePayload::parse(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  const auto version = reader.u32();
  const auto digest = read_digest(reader);
  if (!version || !digest || !reader.exhausted()) return std::nullopt;
  return EvidencePayload{*version, *digest};
}

util::Bytes UpdateRequestPayload::serialize() const {
  util::Bytes out;
  util::put_var_bytes(out, record.serialize());
  util::put_u16(out, static_cast<std::uint16_t>(evidences.size()));
  for (const auto& [issuer, digest] : evidences) {
    util::put_u32(out, issuer);
    put_digest(out, digest);
  }
  return out;
}

std::optional<UpdateRequestPayload> UpdateRequestPayload::parse(
    std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  const auto record_bytes = reader.var_bytes_view();
  if (!record_bytes) return std::nullopt;
  auto record = BindingRecord::parse(*record_bytes);
  if (!record) return std::nullopt;

  UpdateRequestPayload payload{std::move(*record), {}};
  const auto count = reader.u16();
  if (!count) return std::nullopt;
  payload.evidences.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto issuer = reader.u32();
    const auto digest = read_digest(reader);
    if (!issuer || !digest) return std::nullopt;
    payload.evidences.emplace_back(*issuer, *digest);
  }
  if (!reader.exhausted()) return std::nullopt;
  return payload;
}

std::optional<UpdateReplyPayload> UpdateReplyPayload::parse(std::span<const std::uint8_t> data) {
  auto record = BindingRecord::parse(data);
  if (!record) return std::nullopt;
  return UpdateReplyPayload{std::move(*record)};
}

}  // namespace snd::core
