#include "core/messenger.h"

#include <algorithm>
#include <array>
#include <vector>

#include "crypto/sha256_mb.h"
#include "fault/injector.h"
#include "util/simd.h"

namespace snd::core {

Messenger::Messenger(sim::Network& network, sim::DeviceId device, NodeId identity,
                     std::shared_ptr<crypto::KeyPredistribution> keys, std::uint32_t boot_epoch)
    : network_(network),
      device_(device),
      identity_(identity),
      keys_(std::move(keys)),
      key_cache_(keys_, identity),
      // Device-distinct starting nonce so replicas of one identity never
      // collide in the receiver's replay cache; the epoch stride jumps a
      // rebooted device's counters ahead of everything it sent before.
      nonce_counter_((static_cast<std::uint64_t>(device) << 32) +
                     static_cast<std::uint64_t>(boot_epoch) * kEpochStride),
      soa_(util::soa_enabled()) {}

crypto::SymmetricKey Messenger::pair_key(NodeId peer) const {
  auto key = keys_->pairwise(identity_, peer);
  return key ? std::move(*key) : crypto::SymmetricKey();
}

namespace {

util::Bytes mac_input(NodeId src, NodeId dst, std::uint8_t type,
                      std::span<const std::uint8_t> payload, std::uint64_t nonce) {
  util::Bytes input;
  util::put_u32(input, src);
  util::put_u32(input, dst);
  util::put_u8(input, type);
  util::put_var_bytes(input, payload);
  util::put_u64(input, nonce);
  return input;
}

// Streams the same byte sequence as mac_input() directly into the hash
// context: u32 src | u32 dst | u8 type | u16 len | payload | u64 nonce.
// Keeping the two in lockstep is what makes fast and slow MACs bit-equal.
// Templated over the context so a crypto::HashBatch::Job (send_many's wide
// MAC path) absorbs exactly the bytes a scalar crypto::Sha256 would.
template <typename Ctx>
void mac_absorb(Ctx& h, NodeId src, NodeId dst, std::uint8_t type,
                std::span<const std::uint8_t> payload, std::uint64_t nonce) {
  std::array<std::uint8_t, 11> head;
  head[0] = static_cast<std::uint8_t>(src >> 24);
  head[1] = static_cast<std::uint8_t>(src >> 16);
  head[2] = static_cast<std::uint8_t>(src >> 8);
  head[3] = static_cast<std::uint8_t>(src);
  head[4] = static_cast<std::uint8_t>(dst >> 24);
  head[5] = static_cast<std::uint8_t>(dst >> 16);
  head[6] = static_cast<std::uint8_t>(dst >> 8);
  head[7] = static_cast<std::uint8_t>(dst);
  head[8] = type;
  head[9] = static_cast<std::uint8_t>(payload.size() >> 8);
  head[10] = static_cast<std::uint8_t>(payload.size());
  h.update(head);
  h.update(payload);
  h.update_u64(nonce);
}

}  // namespace

bool Messenger::send(NodeId to, std::uint8_t type, const util::Bytes& payload,
                     obs::Phase phase) {
  crypto::ShortMac mac;
  std::uint64_t nonce = 0;
  if (crypto::fast_path_enabled()) {
    const crypto::PairKeyCache::Entry& entry = key_cache_.get(to);
    if (!entry.key.present()) return false;
    nonce = ++nonce_counter_;
    crypto::Sha256 inner = entry.mac.inner_context();
    mac_absorb(inner, identity_, to, type, payload, nonce);
    mac = entry.mac.finish_short(std::move(inner));
  } else {
    const crypto::SymmetricKey key = pair_key(to);
    if (!key.present()) return false;
    nonce = ++nonce_counter_;
    mac = crypto::short_mac(key, mac_input(identity_, to, type, payload, nonce));
  }

  util::Bytes body;
  body.reserve(payload.size() + kAuthOverhead);
  util::put_bytes(body, payload);
  util::put_u64(body, nonce);
  util::put_bytes(body, mac);

  sim::Packet packet{.src = identity_, .dst = to, .type = type, .payload = std::move(body)};
  network_.transmit(device_, std::move(packet), phase);
  return true;
}

std::size_t Messenger::send_many(std::span<const Outgoing> messages) {
  // Serial fallback keeps send() semantics verbatim when the slow crypto
  // path is selected, SIMD batching is off, or a second hash lane would
  // never fill.
  if (!crypto::fast_path_enabled() || !util::simd_enabled() || messages.size() < 2) {
    std::size_t sent = 0;
    for (const Outgoing& m : messages) {
      if (send(m.to, m.type, m.payload, m.phase)) ++sent;
    }
    return sent;
  }

  struct Pending {
    std::size_t index;  // into `messages`
    std::uint64_t nonce;
    crypto::Sha256 outer;  // outer midstate, captured before the cache entry can move
  };
  std::vector<Pending> pending;
  pending.reserve(messages.size());
  crypto::HashBatch inner;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Outgoing& m = messages[i];
    const crypto::PairKeyCache::Entry& entry = key_cache_.get(m.to);
    if (!entry.key.present()) continue;  // skipped without a nonce, like send() == false
    const std::uint64_t nonce = ++nonce_counter_;
    crypto::HashBatch::Job job = inner.add(entry.mac.inner_context());
    mac_absorb(job, identity_, m.to, m.type, m.payload, nonce);
    pending.push_back({i, nonce, entry.mac.outer_context()});
  }
  inner.run();

  crypto::HashBatch outer;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    outer.add(pending[j].outer).update(inner.digest(j).bytes);
  }
  outer.run();

  for (std::size_t j = 0; j < pending.size(); ++j) {
    const Pending& p = pending[j];
    const Outgoing& m = messages[p.index];
    crypto::ShortMac mac;
    std::copy_n(outer.digest(j).bytes.begin(), crypto::kShortMacSize, mac.begin());

    util::Bytes body;
    body.reserve(m.payload.size() + kAuthOverhead);
    util::put_bytes(body, m.payload);
    util::put_u64(body, p.nonce);
    util::put_bytes(body, mac);

    sim::Packet packet{.src = identity_, .dst = m.to, .type = m.type, .payload = std::move(body)};
    network_.transmit(device_, std::move(packet), m.phase);
  }
  return pending.size();
}

void Messenger::broadcast(std::uint8_t type, const util::Bytes& payload, obs::Phase phase) {
  sim::Packet packet{.src = identity_, .dst = kNoNode, .type = type, .payload = payload};
  network_.transmit(device_, std::move(packet), phase);
}

void Messenger::send_unauth(NodeId to, std::uint8_t type, const util::Bytes& payload,
                            obs::Phase phase) {
  sim::Packet packet{.src = identity_, .dst = to, .type = type, .payload = payload};
  network_.transmit(device_, std::move(packet), phase);
}

std::optional<std::span<const std::uint8_t>> Messenger::open(const sim::Packet& packet) {
  if (packet.dst != identity_) return std::nullopt;
  if (packet.payload.size() < kAuthOverhead) return std::nullopt;

  const std::size_t payload_size = packet.payload.size() - kAuthOverhead;
  const std::span<const std::uint8_t> payload = std::span(packet.payload).first(payload_size);
  util::ByteReader tail(std::span(packet.payload).subspan(payload_size));
  const auto nonce = tail.u64();
  const auto mac = tail.bytes_view(crypto::kShortMacSize);
  if (!nonce || !mac) return std::nullopt;

  if (crypto::fast_path_enabled()) {
    const crypto::PairKeyCache::Entry& entry = key_cache_.get(packet.src);
    if (!entry.key.present()) return std::nullopt;
    crypto::Sha256 inner = entry.mac.inner_context();
    mac_absorb(inner, packet.src, identity_, packet.type, payload, *nonce);
    const crypto::ShortMac expected = entry.mac.finish_short(std::move(inner));
    if (!util::constant_time_equal(expected, *mac)) return std::nullopt;
  } else {
    const crypto::SymmetricKey key = pair_key(packet.src);
    if (!key.present()) return std::nullopt;
    if (!crypto::verify_short_mac(
            key, mac_input(packet.src, identity_, packet.type, payload, *nonce), *mac)) {
      return std::nullopt;
    }
  }

  if (!replay_accept(packet.src, *nonce)) {
    if (fault::planted_bug() == fault::PlantedBug::kReplayWindowBypass) {
      // Planted defect: the window said replay, deliver anyway (and count
      // nothing). The replay.never_accepted oracle must catch this.
      ++replay_accepts_;
      return payload;
    }
    // The packet authenticated but its counter is a duplicate or too old:
    // a replayed (or pathologically reordered) message. Charged as a typed
    // post-delivery drop so traces distinguish it from silent discard.
    ++replay_rejects_;
    network_.metrics().count_drop(obs::DropCause::kReplay);
    obs::Tracer& tracer = network_.tracer();
    if (tracer.active()) {
      tracer.emit(obs::Event{.kind = obs::EventKind::kDrop,
                             .code = static_cast<std::uint8_t>(obs::DropCause::kReplay),
                             .node = identity_,
                             .peer = packet.src,
                             .bytes = static_cast<std::uint32_t>(packet.wire_bytes()),
                             .t_ns = network_.now().ns()});
    }
    return std::nullopt;
  }
  return payload;
}

bool Messenger::ReplayWindow::accept(std::uint64_t counter) {
  if (!any) {
    any = true;
    highest = counter;
    mask = 1;
    return true;
  }
  if (counter > highest) {
    const std::uint64_t advance = counter - highest;
    mask = advance >= kReplayWindow ? 0 : mask << advance;
    mask |= 1;
    highest = counter;
    return true;
  }
  const std::uint64_t age = highest - counter;
  if (age >= kReplayWindow) return false;  // too old to distinguish from replay
  const std::uint64_t bit = std::uint64_t{1} << age;
  if ((mask & bit) != 0) return false;  // replay
  mask |= bit;
  return true;
}

bool Messenger::replay_accept(NodeId src, std::uint64_t nonce) {
  const std::uint32_t sender_device = static_cast<std::uint32_t>(nonce >> 32);
  const std::uint64_t counter = nonce & 0xffffffffULL;
  if (soa_) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | sender_device;
    return replay_windows_flat_.get_or_insert(key).accept(counter);
  }
  return replay_windows_[src][sender_device].accept(counter);
}

std::size_t Messenger::replay_window_count() const {
  if (soa_) return replay_windows_flat_.size();
  std::size_t count = 0;
  for (const auto& [src, windows] : replay_windows_) count += windows.size();
  return count;
}

}  // namespace snd::core
