#include "core/messenger.h"

namespace snd::core {

Messenger::Messenger(sim::Network& network, sim::DeviceId device, NodeId identity,
                     std::shared_ptr<crypto::KeyPredistribution> keys)
    : network_(network),
      device_(device),
      identity_(identity),
      keys_(std::move(keys)),
      // Device-distinct starting nonce so replicas of one identity never
      // collide in the receiver's replay cache.
      nonce_counter_(static_cast<std::uint64_t>(device) << 32) {}

crypto::SymmetricKey Messenger::pair_key(NodeId peer) const {
  auto key = keys_->pairwise(identity_, peer);
  return key ? std::move(*key) : crypto::SymmetricKey();
}

namespace {
util::Bytes mac_input(NodeId src, NodeId dst, std::uint8_t type,
                      const util::Bytes& payload, std::uint64_t nonce) {
  util::Bytes input;
  util::put_u32(input, src);
  util::put_u32(input, dst);
  util::put_u8(input, type);
  util::put_var_bytes(input, payload);
  util::put_u64(input, nonce);
  return input;
}
}  // namespace

bool Messenger::send(NodeId to, std::uint8_t type, const util::Bytes& payload,
                     obs::Phase phase) {
  const crypto::SymmetricKey key = pair_key(to);
  if (!key.present()) return false;

  const std::uint64_t nonce = ++nonce_counter_;
  const crypto::ShortMac mac = crypto::short_mac(key, mac_input(identity_, to, type, payload, nonce));

  util::Bytes body = payload;
  util::put_u64(body, nonce);
  util::put_bytes(body, mac);

  sim::Packet packet{.src = identity_, .dst = to, .type = type, .payload = std::move(body)};
  network_.transmit(device_, std::move(packet), phase);
  return true;
}

void Messenger::broadcast(std::uint8_t type, const util::Bytes& payload, obs::Phase phase) {
  sim::Packet packet{.src = identity_, .dst = kNoNode, .type = type, .payload = payload};
  network_.transmit(device_, std::move(packet), phase);
}

void Messenger::send_unauth(NodeId to, std::uint8_t type, const util::Bytes& payload,
                            obs::Phase phase) {
  sim::Packet packet{.src = identity_, .dst = to, .type = type, .payload = payload};
  network_.transmit(device_, std::move(packet), phase);
}

std::optional<util::Bytes> Messenger::open(const sim::Packet& packet) {
  if (packet.dst != identity_) return std::nullopt;
  if (packet.payload.size() < kAuthOverhead) return std::nullopt;

  const std::size_t payload_size = packet.payload.size() - kAuthOverhead;
  util::Bytes payload(packet.payload.begin(),
                      packet.payload.begin() + static_cast<std::ptrdiff_t>(payload_size));
  util::ByteReader tail(std::span(packet.payload).subspan(payload_size));
  const auto nonce = tail.u64();
  const auto mac = tail.bytes(crypto::kShortMacSize);
  if (!nonce || !mac) return std::nullopt;

  const crypto::SymmetricKey key = pair_key(packet.src);
  if (!key.present()) return std::nullopt;
  if (!crypto::verify_short_mac(
          key, mac_input(packet.src, identity_, packet.type, payload, *nonce), *mac)) {
    return std::nullopt;
  }

  auto& seen = seen_nonces_[packet.src];
  if (!seen.insert(*nonce).second) return std::nullopt;  // replay
  return payload;
}

}  // namespace snd::core
