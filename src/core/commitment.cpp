#include "core/commitment.h"

#include <cassert>

#include "crypto/sha256_mb.h"

namespace snd::core {
namespace {

// Absorb helpers shared by the scalar (Ctx = crypto::Sha256) and batched
// (Ctx = crypto::HashBatch::Job) derivations: one byte sequence per
// derivation, written once, so the two paths cannot drift apart.
template <typename Ctx>
void absorb_vkey(Ctx& ctx, const crypto::SymmetricKey& master, NodeId node) {
  ctx.update_framed("snd.vkey");
  ctx.update_framed(master.material());
  ctx.update_u64(node);
}

template <typename Ctx>
void absorb_binding(Ctx& ctx, const crypto::SymmetricKey& master, NodeId node,
                    std::uint32_t version, const topology::NeighborList& neighbors) {
  ctx.update_framed("snd.binding");
  ctx.update_framed(master.material());
  ctx.update_u64(version);
  ctx.update_u64(neighbors.size());
  for (NodeId n : neighbors) ctx.update_u64(n);
  ctx.update_u64(node);
}

template <typename Ctx>
void absorb_relation(Ctx& ctx, const crypto::SymmetricKey& verification_key_of_v, NodeId u) {
  ctx.update_framed("snd.relation");
  ctx.update_framed(verification_key_of_v.material());
  ctx.update_u64(u);
}

template <typename Ctx>
void absorb_evidence(Ctx& ctx, const crypto::SymmetricKey& master, NodeId u, NodeId v,
                     std::uint32_t version) {
  ctx.update_framed("snd.evidence");
  ctx.update_framed(master.material());
  ctx.update_u64(u);
  ctx.update_u64(v);
  ctx.update_u64(version);
}

/// Batch drained and reused by every batched derivation below: the service
/// ingest loop calls these thousands of times, and keeping the job buffers'
/// capacity across drains keeps the hot path allocation-free. Mutators are
/// single-threaded per thread of callers (thread_local), and no absorb
/// helper re-enters a batched derivation.
crypto::HashBatch& scratch_batch() {
  static thread_local crypto::HashBatch batch;
  batch.clear();
  return batch;
}

}  // namespace

crypto::SymmetricKey verification_key(const crypto::SymmetricKey& master, NodeId node) {
  crypto::Sha256 ctx;
  absorb_vkey(ctx, master, node);
  return crypto::SymmetricKey::from_digest(ctx.finalize());
}

crypto::Digest binding_commitment(const crypto::SymmetricKey& master, NodeId node,
                                  std::uint32_t version,
                                  const topology::NeighborList& neighbors) {
  crypto::Sha256 ctx;
  absorb_binding(ctx, master, node, version, neighbors);
  return ctx.finalize();
}

crypto::Digest relation_commitment(const crypto::SymmetricKey& verification_key_of_v, NodeId u) {
  crypto::Sha256 ctx;
  absorb_relation(ctx, verification_key_of_v, u);
  return ctx.finalize();
}

crypto::Digest relation_evidence(const crypto::SymmetricKey& master, NodeId u, NodeId v,
                                 std::uint32_t version) {
  crypto::Sha256 ctx;
  absorb_evidence(ctx, master, u, v, version);
  return ctx.finalize();
}

void verification_keys(const crypto::SymmetricKey& master, std::span<const NodeId> nodes,
                       std::span<crypto::SymmetricKey> out) {
  assert(nodes.size() == out.size());
  crypto::HashBatch& batch = scratch_batch();
  for (NodeId node : nodes) {
    crypto::HashBatch::Job job = batch.add();
    absorb_vkey(job, master, node);
  }
  batch.run();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = crypto::SymmetricKey::from_digest(batch.digest(i));
  }
}

void relation_commitments(std::span<const crypto::SymmetricKey> verification_keys_of_v, NodeId u,
                          std::span<crypto::Digest> out) {
  assert(verification_keys_of_v.size() == out.size());
  crypto::HashBatch& batch = scratch_batch();
  for (const crypto::SymmetricKey& vkey : verification_keys_of_v) {
    crypto::HashBatch::Job job = batch.add();
    absorb_relation(job, vkey, u);
  }
  batch.run();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = batch.digest(i);
}

void relation_evidences(const crypto::SymmetricKey& master, std::span<const EvidenceSpec> specs,
                        std::span<crypto::Digest> out) {
  assert(specs.size() == out.size());
  crypto::HashBatch& batch = scratch_batch();
  for (const EvidenceSpec& spec : specs) {
    crypto::HashBatch::Job job = batch.add();
    absorb_evidence(job, master, spec.u, spec.v, spec.version);
  }
  batch.run();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = batch.digest(i);
}

void binding_commitments(const crypto::SymmetricKey& master, std::span<const BindingSpec> specs,
                         std::span<crypto::Digest> out) {
  assert(specs.size() == out.size());
  crypto::HashBatch& batch = scratch_batch();
  for (const BindingSpec& spec : specs) {
    crypto::HashBatch::Job job = batch.add();
    absorb_binding(job, master, spec.node, spec.version, *spec.neighbors);
  }
  batch.run();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = batch.digest(i);
}

}  // namespace snd::core
