#include "core/commitment.h"

namespace snd::core {

crypto::SymmetricKey verification_key(const crypto::SymmetricKey& master, NodeId node) {
  crypto::Sha256 ctx;
  ctx.update_framed("snd.vkey");
  ctx.update_framed(master.material());
  ctx.update_u64(node);
  return crypto::SymmetricKey::from_digest(ctx.finalize());
}

crypto::Digest binding_commitment(const crypto::SymmetricKey& master, NodeId node,
                                  std::uint32_t version,
                                  const topology::NeighborList& neighbors) {
  crypto::Sha256 ctx;
  ctx.update_framed("snd.binding");
  ctx.update_framed(master.material());
  ctx.update_u64(version);
  ctx.update_u64(neighbors.size());
  for (NodeId n : neighbors) ctx.update_u64(n);
  ctx.update_u64(node);
  return ctx.finalize();
}

crypto::Digest relation_commitment(const crypto::SymmetricKey& verification_key_of_v, NodeId u) {
  crypto::Sha256 ctx;
  ctx.update_framed("snd.relation");
  ctx.update_framed(verification_key_of_v.material());
  ctx.update_u64(u);
  return ctx.finalize();
}

crypto::Digest relation_evidence(const crypto::SymmetricKey& master, NodeId u, NodeId v,
                                 std::uint32_t version) {
  crypto::Sha256 ctx;
  ctx.update_framed("snd.evidence");
  ctx.update_framed(master.material());
  ctx.update_u64(u);
  ctx.update_u64(v);
  ctx.update_u64(version);
  return ctx.finalize();
}

}  // namespace snd::core
