// The binding record R(u) = {version, N(u), C(u)} (paper §4.1, extended
// format from §4.4). It "binds node u to the place defined by the set of
// nodes in N(u)" and is the object compromised nodes cannot re-forge once
// K is erased.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/commitment.h"
#include "crypto/key.h"
#include "topology/graph.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace snd::core {

struct BindingRecord {
  NodeId node = kNoNode;
  /// Number of times this record has been re-issued (0 = initial binding).
  std::uint32_t version = 0;
  topology::NeighborList neighbors;
  crypto::Digest commitment;

  /// Creates a committed record for `node` over `neighbors` using K.
  static BindingRecord make(const crypto::SymmetricKey& master, NodeId node,
                            std::uint32_t version, topology::NeighborList neighbors);

  /// Recomputes the commitment with K and compares. Only callers still
  /// holding the master key (newly deployed nodes) can verify.
  [[nodiscard]] bool verify(const crypto::SymmetricKey& master) const;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<BindingRecord> parse(std::span<const std::uint8_t> data);

  friend bool operator==(const BindingRecord&, const BindingRecord&) = default;
};

}  // namespace snd::core
