// SndDeployment: harness that assembles a complete simulated deployment --
// network, key predistribution, direct verifier, protocol agents -- and
// exposes the graph views (actual / tentative / functional) the paper's
// metrics are computed on. Used by every bench, example, and integration
// test; the adversary attaches to it to mount attacks.
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/protocol.h"
#include "crypto/keypredist.h"
#include "fault/injector.h"
#include "sim/deployment.h"
#include "sim/network.h"
#include "topology/graph.h"
#include "verify/verifier.h"

namespace snd::core {

struct DeploymentConfig {
  util::Rect field{{0.0, 0.0}, {100.0, 100.0}};
  double radio_range = 50.0;
  /// Per-delivery loss probability on the channel.
  double channel_loss = 0.0;
  /// Half-duplex MAC ablation (see sim::ChannelConfig::half_duplex).
  bool half_duplex = false;
  /// Optional per-device battery accounting; exhausted devices die.
  sim::EnergyConfig energy;
  ProtocolConfig protocol;
  std::uint64_t seed = 1;
  /// Use log-normal shadowing instead of the unit disk.
  bool log_normal_shadowing = false;
  double shadowing_sigma_db = 4.0;
  double path_loss_exponent = 3.0;
};

class SndDeployment {
 public:
  explicit SndDeployment(DeploymentConfig config);

  /// Optional overrides; call before the first deploy.
  void set_verifier(std::shared_ptr<verify::DirectVerifier> verifier);
  void set_key_scheme(std::shared_ptr<crypto::KeyPredistribution> keys);

  /// Deploys `n` nodes uniformly at the current simulation time and starts
  /// their protocol agents. Returns their identities.
  std::vector<NodeId> deploy_round(std::size_t n);

  /// Deploys one node at an explicit position.
  NodeId deploy_node_at(util::Vec2 position);

  /// Runs the scheduler to quiescence (all protocol phases complete).
  void run();
  /// Runs for a bounded additional duration.
  void run_for(sim::Time duration);

  // -- Access -----------------------------------------------------------
  [[nodiscard]] sim::Network& network() { return *network_; }
  [[nodiscard]] const sim::Network& network() const { return *network_; }
  [[nodiscard]] const crypto::SymmetricKey& master_key() const { return master_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] std::shared_ptr<crypto::KeyPredistribution> key_scheme() { return keys_; }
  [[nodiscard]] std::shared_ptr<verify::DirectVerifier> verifier() { return verifier_; }
  [[nodiscard]] std::shared_ptr<const verify::DirectVerifier> verifier() const {
    return verifier_;
  }

  /// Agent for a device; null if detached (compromised) or unknown.
  [[nodiscard]] SndNode* agent_for_device(sim::DeviceId device);
  /// Agent for an identity's *original* device.
  [[nodiscard]] SndNode* agent(NodeId identity);
  [[nodiscard]] const SndNode* agent(NodeId identity) const;
  [[nodiscard]] std::vector<const SndNode*> agents() const;

  /// Removes and returns the agent (used when the adversary takes over a
  /// device); the caller owns the returned agent.
  std::unique_ptr<SndNode> detach_agent(sim::DeviceId device);

  /// Marks a device dead (battery exhaustion): the agent stops receiving.
  void kill_device(sim::DeviceId device);

  // -- Fault injection ---------------------------------------------------
  /// Arms `plan` for this run: installs a fault::Injector as the network's
  /// fault hook (delivery perturbation + clock skew) and schedules the
  /// plan's crash/reboot actions. Call before run(); the deployment owns
  /// the injector. An empty plan is a no-op, keeping the run bit-identical
  /// to an unfaulted one.
  void apply_fault_plan(const fault::FaultPlan& plan);
  /// The armed injector, or nullptr when no plan was applied.
  [[nodiscard]] fault::Injector* injector() { return injector_.get(); }
  [[nodiscard]] const fault::Injector* injector() const { return injector_.get(); }

  /// Crashes `identity`'s original device right now: the device dies and
  /// its agent stops (same observable state as battery exhaustion).
  /// Returns false for unknown identities.
  bool crash_node(NodeId identity);
  /// Revives `identity`'s original device and boots a *fresh* agent on it:
  /// new protocol state, new Messenger with the next boot epoch (so peers
  /// accept its traffic while stale pre-crash packets stay rejectable).
  /// Restores the energy budget when accounting is on.
  bool reboot_node(NodeId identity);
  /// Reboots this device's agent (0 = never rebooted).
  [[nodiscard]] std::uint32_t boot_epoch(sim::DeviceId device) const;

  // -- Graph views ----------------------------------------------------------
  /// Ground truth: radio links among benign devices (directed both ways).
  [[nodiscard]] topology::Digraph actual_benign_graph() const;
  /// Union of all agents' tentative neighbor lists.
  [[nodiscard]] topology::Digraph tentative_graph() const;
  /// Union of all agents' functional neighbor lists.
  [[nodiscard]] topology::Digraph functional_graph() const;

 private:
  NodeId next_identity_ = 1;
  DeploymentConfig config_;
  crypto::SymmetricKey master_;
  std::unique_ptr<sim::Network> network_;
  std::shared_ptr<verify::DirectVerifier> verifier_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  util::Rng deploy_rng_;
  /// Agents in sim::Network layout: parallel to the device table, indexed by
  /// DeviceId (dense from 0). A null slot is a device with no agent -- never
  /// deployed by this driver, or detached/compromised. Iteration ascends by
  /// device id, exactly as the seed std::map did.
  std::vector<std::unique_ptr<SndNode>> agents_;
  std::unique_ptr<fault::Injector> injector_;
  /// Reboot counts, parallel to agents_ (0 = never rebooted).
  std::vector<std::uint32_t> boot_epochs_;

  /// Grows the parallel vectors to cover `device`.
  void ensure_slot(sim::DeviceId device);

  /// The non-replica device claiming `identity`; kNoDevice when unknown.
  [[nodiscard]] sim::DeviceId original_device(NodeId identity) const;
};

}  // namespace snd::core
