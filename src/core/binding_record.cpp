#include "core/binding_record.h"

#include <algorithm>

namespace snd::core {

BindingRecord BindingRecord::make(const crypto::SymmetricKey& master, NodeId node,
                                  std::uint32_t version, topology::NeighborList neighbors) {
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
  BindingRecord record{
      .node = node, .version = version, .neighbors = std::move(neighbors), .commitment = {}};
  record.commitment = binding_commitment(master, node, version, record.neighbors);
  return record;
}

bool BindingRecord::verify(const crypto::SymmetricKey& master) const {
  if (!std::is_sorted(neighbors.begin(), neighbors.end())) return false;
  return binding_commitment(master, node, version, neighbors) == commitment;
}

util::Bytes BindingRecord::serialize() const {
  util::Bytes out;
  util::put_u32(out, node);
  util::put_u32(out, version);
  util::put_u16(out, static_cast<std::uint16_t>(neighbors.size()));
  for (NodeId n : neighbors) util::put_u32(out, n);
  util::put_bytes(out, commitment.bytes);
  return out;
}

std::optional<BindingRecord> BindingRecord::parse(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  BindingRecord record;
  const auto node = reader.u32();
  const auto version = reader.u32();
  const auto count = reader.u16();
  if (!node || !version || !count) return std::nullopt;
  record.node = *node;
  record.version = *version;
  record.neighbors.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto n = reader.u32();
    if (!n) return std::nullopt;
    record.neighbors.push_back(*n);
  }
  const auto digest = reader.bytes_view(crypto::kDigestSize);
  if (!digest || !reader.exhausted()) return std::nullopt;
  std::copy(digest->begin(), digest->end(), record.commitment.bytes.begin());
  return record;
}

}  // namespace snd::core
