// Work-stealing thread pool for embarrassingly parallel Monte-Carlo trials.
//
// Determinism contract: trial i always runs with seed
// util::derive_seed(base_seed, i), writes its result into a preallocated
// slot owned by that index alone, and all aggregation happens in trial
// order after the workers join. Aggregate statistics are therefore
// bit-identical for any worker count and any scheduling interleaving; the
// timing fields of SweepReport are the only nondeterministic outputs.
//
// Scheduling: each worker starts with an even contiguous shard of the trial
// index space, pops indices from its front, and when drained steals the back
// half of the fullest remaining shard. Shards are packed (begin, end) pairs
// in a single atomic word mutated only by CAS; begin only ever grows and end
// only ever shrinks, so the word never repeats and the ABA problem cannot
// arise. A trial that throws is recorded (message + failed count) and the
// sweep continues.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/summary.h"
#include "util/stats.h"

namespace snd::runner {

/// Timing and failure telemetry for one sweep; serialisable as a
/// BENCH_<name>.json perf artifact (see docs/RUNNER.md).
struct SweepReport {
  std::string name;
  std::size_t trials = 0;
  std::size_t failed = 0;
  std::size_t jobs = 1;
  double wall_seconds = 0.0;
  util::Series trial_micros;        ///< Per-trial wall time, in trial order.
  std::vector<std::string> errors;  ///< First few failure messages, trial order.
  /// Cap on `errors`; shared with shard::merge_shards so a merged report
  /// reconstructs the exact error list an unsharded run would have kept.
  static constexpr std::size_t kMaxReportedErrors = 8;

  /// Named per-trial result columns (e.g. "accuracy"), appended in trial
  /// order by the driver after the workers join. Deterministic, so they are
  /// part of the canonical report (below) and of the .sndshard columnar
  /// format; serialized as mean/stdev/ci95 per metric.
  std::vector<std::pair<std::string, util::Series>> metrics;
  /// The column named `name`, created on first use (insertion order is
  /// serialization order).
  util::Series& metric(std::string_view name);

  /// Folded per-trial trace summaries (typed per-phase traffic, drop-cause
  /// breakdown, protocol counters). Deterministic: drivers record each
  /// trial's Network::trace_summary() into an obs::Registry slot keyed by
  /// trial index and attach registry.fold() -- identical for any --jobs.
  bool has_trace = false;
  obs::TraceSummary trace;
  void attach_trace(const obs::TraceSummary& folded) {
    has_trace = true;
    trace.merge(folded);
  }

  [[nodiscard]] double trials_per_second() const;
  /// Folds another sweep into this one (drivers running several grids keep
  /// one cumulative report). Timing series are concatenated, wall time sums.
  void merge(const SweepReport& other);
  [[nodiscard]] std::string to_json() const;
  /// Deterministic subset of to_json(): drops the wall-clock fields (jobs,
  /// wall_seconds, trials_per_second, trial_us) and keeps name, trials,
  /// failed, metrics, errors, and the trace block. Two runs of the same
  /// sweep -- sharded or not, any --jobs -- produce byte-identical canonical
  /// reports; CI's shard merge gate compares exactly these bytes.
  [[nodiscard]] std::string to_canonical_json() const;
  /// Writes BENCH_<name>.json into $SND_BENCH_DIR (default: the working
  /// directory); returns the path, or an empty string on I/O failure.
  std::string write_json() const;
  /// Writes to_canonical_json() to `path`; false on I/O failure.
  bool write_canonical(const std::string& path) const;
};

class TrialRunner {
 public:
  /// jobs == 0 resolves to std::thread::hardware_concurrency().
  explicit TrialRunner(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Runs fn(trial_index, seed) for every trial_index in [0, trials) and
  /// returns the results in trial order. A trial that throws yields nullopt
  /// and is counted in report->failed; the rest of the sweep continues.
  template <typename Fn>
  auto run(std::size_t trials, std::uint64_t base_seed, Fn&& fn,
           SweepReport* report = nullptr)
      -> std::vector<std::optional<std::invoke_result_t<Fn&, std::size_t, std::uint64_t>>> {
    using T = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
    std::vector<std::optional<T>> results(trials);
    run_raw(
        trials, base_seed, /*indices=*/nullptr,
        [&](std::size_t slot, std::size_t i, std::uint64_t seed) {
          results[slot].emplace(fn(i, seed));
        },
        report);
    return results;
  }

  /// Shard-aware variant: runs fn(trial_index, seed) only for the global
  /// trial indices in `indices` (any order, no duplicates), returning
  /// results parallel to `indices`. Each trial still gets
  /// derive_seed(base_seed, trial_index) -- the seed depends on the global
  /// index alone, so the union of disjoint subsets is bit-identical to one
  /// run() over the full sweep (docs/SHARDING.md).
  template <typename Fn>
  auto run_subset(const std::vector<std::uint32_t>& indices, std::uint64_t base_seed,
                  Fn&& fn, SweepReport* report = nullptr)
      -> std::vector<std::optional<std::invoke_result_t<Fn&, std::size_t, std::uint64_t>>> {
    using T = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
    std::vector<std::optional<T>> results(indices.size());
    run_raw(
        indices.size(), base_seed, indices.data(),
        [&](std::size_t slot, std::size_t i, std::uint64_t seed) {
          results[slot].emplace(fn(i, seed));
        },
        report);
    return results;
  }

  /// Convenience for double-valued trials: mean/stdev aggregated in trial
  /// order, so the statistics are bit-identical across job counts.
  template <typename Fn>
  util::RunningStats run_stats(std::size_t trials, std::uint64_t base_seed, Fn&& fn,
                               SweepReport* report = nullptr) {
    util::RunningStats stats;
    for (const auto& value : run(trials, base_seed, fn, report)) {
      if (value.has_value()) stats.add(*value);
    }
    return stats;
  }

 private:
  /// Non-template core: sharding, stealing, timing, and failure capture.
  /// Runs `count` tasks; task `slot` executes global trial index
  /// `indices ? indices[slot] : slot` with that index's derived seed.
  void run_raw(std::size_t count, std::uint64_t base_seed,
               const std::uint32_t* indices,
               const std::function<void(std::size_t, std::size_t, std::uint64_t)>& body,
               SweepReport* report) const;

  std::size_t jobs_;
};

}  // namespace snd::runner
