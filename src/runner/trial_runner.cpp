#include "runner/trial_runner.h"

#include "util/runtime_config.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include "util/rng.h"

namespace snd::runner {

namespace {

/// One worker's shard of the trial index space: a (begin, end) pair packed
/// into a single atomic word so the owning pop and a thief's split race
/// through one CAS. begin only grows and end only shrinks, so no state ever
/// repeats and CAS cannot suffer ABA.
class StealableRange {
 public:
  void init(std::uint32_t begin, std::uint32_t end) {
    word_.store(pack(begin, end), std::memory_order_relaxed);
  }

  /// Owner path: takes the front index. False when the shard is drained.
  bool pop(std::uint32_t& index) {
    std::uint64_t word = word_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t begin = unpack_begin(word);
      const std::uint32_t end = unpack_end(word);
      if (begin >= end) return false;
      if (word_.compare_exchange_weak(word, pack(begin + 1, end),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        index = begin;
        return true;
      }
    }
  }

  /// Thief path: splits off the back half as a privately owned chunk.
  bool steal(std::uint32_t& begin, std::uint32_t& end) {
    std::uint64_t word = word_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t b = unpack_begin(word);
      const std::uint32_t e = unpack_end(word);
      if (b >= e) return false;
      const std::uint32_t take = (e - b + 1) / 2;
      if (word_.compare_exchange_weak(word, pack(b, e - take),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        begin = e - take;
        end = e;
        return true;
      }
    }
  }

  [[nodiscard]] std::uint32_t remaining() const {
    const std::uint64_t word = word_.load(std::memory_order_relaxed);
    const std::uint32_t begin = unpack_begin(word);
    const std::uint32_t end = unpack_end(word);
    return begin < end ? end - begin : 0;
  }

 private:
  static std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
    return (static_cast<std::uint64_t>(end) << 32) | begin;
  }
  static std::uint32_t unpack_begin(std::uint64_t word) {
    return static_cast<std::uint32_t>(word);
  }
  static std::uint32_t unpack_end(std::uint64_t word) {
    return static_cast<std::uint32_t>(word >> 32);
  }

  std::atomic<std::uint64_t> word_{0};
};

double micros_between(std::chrono::steady_clock::time_point t0,
                      std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}


}  // namespace

TrialRunner::TrialRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? hw : 1;
  }
}

void TrialRunner::run_raw(
    std::size_t count, std::uint64_t base_seed, const std::uint32_t* indices,
    const std::function<void(std::size_t, std::size_t, std::uint64_t)>& body,
    SweepReport* report) const {
  // Shard indices are packed 32-bit (see StealableRange).
  if (count > 0xffffffffULL) {
    throw std::invalid_argument("TrialRunner: more than 2^32 trials per sweep");
  }
  const auto sweep_start = std::chrono::steady_clock::now();

  // Per-trial slots: each slot is written by exactly one worker, and the
  // joins below publish every write before the trial-order merge reads them.
  std::vector<double> micros(count, 0.0);
  std::vector<std::string> messages(count);
  std::vector<unsigned char> failed(count, 0);

  auto execute = [&](std::uint32_t slot) {
    const std::size_t trial = indices != nullptr ? indices[slot] : slot;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      body(slot, trial, util::derive_seed(base_seed, trial));
    } catch (const std::exception& e) {
      failed[slot] = 1;
      messages[slot] = e.what();
    } catch (...) {
      failed[slot] = 1;
      messages[slot] = "non-standard exception";
    }
    micros[slot] = micros_between(t0, std::chrono::steady_clock::now());
  };

  const std::size_t trials = count;
  const std::size_t jobs = trials == 0 ? 1 : std::min(jobs_, trials);
  if (jobs <= 1) {
    for (std::uint32_t i = 0; i < trials; ++i) execute(i);
  } else {
    std::vector<StealableRange> shards(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      // Even contiguous shards; the first `trials % jobs` get one extra.
      const std::size_t lo = w * trials / jobs;
      const std::size_t hi = (w + 1) * trials / jobs;
      shards[w].init(static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi));
    }

    auto worker = [&](std::size_t self) {
      std::uint32_t chunk_lo = 0;
      std::uint32_t chunk_hi = 0;  // privately owned stolen chunk
      for (;;) {
        if (chunk_lo < chunk_hi) {
          execute(chunk_lo++);
          continue;
        }
        std::uint32_t index = 0;
        if (shards[self].pop(index)) {
          execute(index);
          continue;
        }
        // Own shard drained: steal the back half of the fullest shard.
        std::size_t victim = jobs;
        std::uint32_t best = 0;
        for (std::size_t w = 0; w < jobs; ++w) {
          if (w == self) continue;
          const std::uint32_t left = shards[w].remaining();
          if (left > best) {
            best = left;
            victim = w;
          }
        }
        if (victim == jobs || !shards[victim].steal(chunk_lo, chunk_hi)) {
          if (best == 0) break;  // every shard drained; running trials finish alone
          continue;              // lost the race to another thief; rescan
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
    for (std::thread& t : threads) t.join();
  }

  if (report == nullptr) return;
  report->trials += trials;
  report->jobs = jobs_;
  report->wall_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - sweep_start)
                              .count();
  for (std::size_t i = 0; i < trials; ++i) {
    report->trial_micros.add(micros[i]);
    if (failed[i] != 0) {
      ++report->failed;
      if (report->errors.size() < SweepReport::kMaxReportedErrors) {
        const std::size_t trial = indices != nullptr ? indices[i] : i;
        report->errors.push_back("trial " + std::to_string(trial) + ": " + messages[i]);
      }
    }
  }
}

util::Series& SweepReport::metric(std::string_view name) {
  for (auto& [key, series] : metrics) {
    if (key == name) return series;
  }
  metrics.emplace_back(std::string(name), util::Series{});
  return metrics.back().second;
}

double SweepReport::trials_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
}

void SweepReport::merge(const SweepReport& other) {
  trials += other.trials;
  failed += other.failed;
  jobs = other.jobs;
  wall_seconds += other.wall_seconds;
  for (double v : other.trial_micros.values()) trial_micros.add(v);
  for (const std::string& e : other.errors) {
    if (errors.size() >= SweepReport::kMaxReportedErrors) break;
    errors.push_back(e);
  }
  for (const auto& [key, series] : other.metrics) {
    util::Series& mine = metric(key);
    for (double v : series.values()) mine.add(v);
  }
  if (other.has_trace) attach_trace(other.trace);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// mean/stdev/ci95 block for one metric column. The normal-approximation
/// 95% interval (mean +/- 1.96 * sem) is computed from the series in its
/// stored (trial) order, so it is byte-identical however the trials were
/// sharded.
std::string metric_block(const util::Series& series) {
  const double mean = series.mean();
  const double stdev = series.stdev();
  const double sem = series.count() > 1
                         ? stdev / std::sqrt(static_cast<double>(series.count()))
                         : 0.0;
  std::string out = "{\"count\": " + std::to_string(series.count());
  out += ", \"mean\": " + json_num(mean);
  out += ", \"stdev\": " + json_num(stdev);
  out += ", \"ci95\": [" + json_num(mean - 1.96 * sem) + ", " +
         json_num(mean + 1.96 * sem) + "]}";
  return out;
}

}  // namespace

std::string SweepReport::to_json() const {
  std::string out = "{\n  \"name\": ";
  append_json_string(out, name);
  out += ",\n  \"trials\": " + std::to_string(trials);
  out += ",\n  \"failed\": " + std::to_string(failed);
  out += ",\n  \"jobs\": " + std::to_string(jobs);
  out += ",\n  \"wall_seconds\": " + json_num(wall_seconds);
  out += ",\n  \"trials_per_second\": " + json_num(trials_per_second());
  out += ",\n  \"trial_us\": {";
  if (trial_micros.count() > 0) {
    out += "\"mean\": " + json_num(trial_micros.mean());
    out += ", \"p50\": " + json_num(trial_micros.percentile(50.0));
    out += ", \"p95\": " + json_num(trial_micros.percentile(95.0));
    out += ", \"max\": " + json_num(trial_micros.percentile(100.0));
  }
  out += "}";
  if (!metrics.empty()) {
    out += ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) out += ", ";
      append_json_string(out, metrics[i].first);
      out += ": " + metric_block(metrics[i].second);
    }
    out += "}";
  }
  out += ",\n  \"errors\": [";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, errors[i]);
  }
  out += "]";
  if (has_trace) out += ",\n  \"trace\": " + trace.to_json();
  out += "\n}\n";
  return out;
}

std::string SweepReport::to_canonical_json() const {
  std::string out = "{\n  \"name\": ";
  append_json_string(out, name);
  out += ",\n  \"trials\": " + std::to_string(trials);
  out += ",\n  \"failed\": " + std::to_string(failed);
  if (!metrics.empty()) {
    out += ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) out += ", ";
      append_json_string(out, metrics[i].first);
      out += ": " + metric_block(metrics[i].second);
    }
    out += "}";
  }
  out += ",\n  \"errors\": [";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, errors[i]);
  }
  out += "]";
  if (has_trace) out += ",\n  \"trace\": " + trace.to_json();
  out += "\n}\n";
  return out;
}

std::string SweepReport::write_json() const {
  const std::string path = bench_artifact_path("BENCH_" + name + ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok ? path : std::string{};
}

bool SweepReport::write_canonical(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_canonical_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace snd::runner
