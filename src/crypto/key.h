// Symmetric key material with explicit erasure semantics.
//
// The paper's protocol hinges on a node deleting the master key K after
// neighbor discovery: "once a secret is deleted from the memory of a sensor
// node, it is not possible for an attacker to recover such secret even if
// this node is compromised later" (§4). SymmetricKey models that contract:
// erase() zeroizes the material and flips a present flag; the adversary's
// secret extraction only sees keys whose present flag is still set.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.h"

namespace snd::crypto {

inline constexpr std::size_t kKeySize = 32;

class SymmetricKey {
 public:
  /// An erased/absent key.
  SymmetricKey() = default;

  static SymmetricKey from_bytes(std::span<const std::uint8_t> material);
  static SymmetricKey from_digest(const Digest& digest);
  /// Deterministic key from a 64-bit seed (test/deployment tooling).
  static SymmetricKey from_seed(std::uint64_t seed);

  SymmetricKey(const SymmetricKey&) = default;
  SymmetricKey& operator=(const SymmetricKey&) = default;
  /// Moved-from keys are erased, so key material never lingers in
  /// moved-from objects.
  SymmetricKey(SymmetricKey&& other) noexcept;
  SymmetricKey& operator=(SymmetricKey&& other) noexcept;
  ~SymmetricKey() { erase(); }

  /// Zeroizes the material. Irreversible for this object.
  void erase();

  [[nodiscard]] bool present() const { return present_; }
  /// Key material; must only be called when present().
  [[nodiscard]] std::span<const std::uint8_t> material() const;

  /// Constant-time comparison; two absent keys compare equal.
  friend bool operator==(const SymmetricKey& a, const SymmetricKey& b);

  [[nodiscard]] std::string hex() const;

 private:
  std::array<std::uint8_t, kKeySize> material_{};
  bool present_ = false;
};

}  // namespace snd::crypto
