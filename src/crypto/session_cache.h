// Per-endpoint pairwise session-key cache.
//
// Deriving pairwise(u, v) is the single most expensive step on the message
// hot path: a KDF hash for KdcScheme, a λ-degree polynomial evaluation for
// BlundoScheme. The derivation is deterministic per pair, so each endpoint
// memoizes the key -- and the HMAC ipad/opad midstates computed from it --
// the first time it talks to a peer, and every later send()/open() is a map
// lookup.
//
// Absent keys are deliberately NOT cached: with probabilistic schemes (or
// incremental deployment, where a peer provisions after our first attempt)
// a pair that fails today can succeed tomorrow, and the slow path re-derives
// on every call. Caching only positives keeps the retry semantics identical.
#pragma once

#include <map>
#include <memory>

#include "crypto/hmac.h"
#include "crypto/keypredist.h"
#include "util/flat.h"
#include "util/ids.h"

namespace snd::crypto {

/// Process-wide switch for the cached-key / midstate / zero-alloc fast path.
/// Defaults to on; the environment variable SND_CRYPTO_FAST=0|off|false
/// disables it at startup (for A/B bit-identity checks and benchmarks).
/// The slow path is the seed implementation, kept verbatim.
[[nodiscard]] bool fast_path_enabled();
void set_fast_path_enabled(bool enabled);

class PairKeyCache {
 public:
  struct Entry {
    SymmetricKey key;   // absent when the scheme has no key for the pair
    HmacKey mac;        // midstates for `key`; absent iff key is absent
  };

  PairKeyCache(std::shared_ptr<const KeyPredistribution> scheme, NodeId self)
      : scheme_(std::move(scheme)), self_(self), soa_(util::soa_enabled()) {}

  /// The cached pairwise entry for (self, peer). Derives and caches on the
  /// first hit; negative results are returned but never stored. With the
  /// seed map the reference lives until invalidate()/clear(); with the flat
  /// representation (util::soa_enabled()) any later get() that inserts may
  /// also invalidate it -- every call site consumes the entry immediately.
  const Entry& get(NodeId peer);

  /// Drops one peer's entry (e.g. after re-keying in tests).
  void invalidate(NodeId peer) {
    if (soa_) {
      entries_flat_.erase(peer);
    } else {
      entries_.erase(peer);
    }
  }
  void clear() {
    entries_.clear();
    entries_flat_.clear();
  }
  [[nodiscard]] std::size_t size() const {
    return soa_ ? entries_flat_.size() : entries_.size();
  }
  [[nodiscard]] NodeId self() const { return self_; }

 private:
  std::shared_ptr<const KeyPredistribution> scheme_;
  NodeId self_;
  const bool soa_;  // representation, captured at construction
  std::map<NodeId, Entry> entries_;            // seed representation
  util::FlatMap<NodeId, Entry> entries_flat_;  // sorted-array representation
  Entry absent_;  // returned (not stored) when derivation fails
};

}  // namespace snd::crypto
