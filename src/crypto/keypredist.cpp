#include "crypto/keypredist.h"

#include <algorithm>

namespace snd::crypto {

std::unique_ptr<KdcScheme> KdcScheme::from_seed(std::uint64_t seed) {
  return std::make_unique<KdcScheme>(SymmetricKey::from_seed(seed));
}

std::optional<SymmetricKey> KdcScheme::pairwise(NodeId u, NodeId v) const {
  if (u == v) return std::nullopt;
  return derive_pair_key(master_, "snd.kdc.pair", std::min(u, v), std::max(u, v));
}

}  // namespace snd::crypto
