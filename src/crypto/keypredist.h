// Pairwise key predistribution schemes.
//
// The paper assumes "every two nodes in the field can establish a pairwise
// key" via predistribution ([3],[4],[6],[7],[13] in the paper). This header
// defines the scheme interface plus the trivial KDC-derived scheme; the
// Blundo polynomial scheme (deterministic, λ-collusion-secure) and the
// Eschenauer-Gligor random pool (probabilistic) live in blundo.h / eg_pool.h.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "crypto/kdf.h"
#include "crypto/key.h"
#include "util/ids.h"

namespace snd::crypto {

class KeyPredistribution {
 public:
  virtual ~KeyPredistribution() = default;

  /// Installs per-node secret material at manufacture time. Must be called
  /// once per node before pairwise() involving that node.
  virtual void provision(NodeId node) = 0;

  /// The pairwise key both endpoints derive from their own material, or
  /// std::nullopt if the scheme fails for this pair (possible for
  /// probabilistic schemes). Symmetric: pairwise(u,v) == pairwise(v,u).
  [[nodiscard]] virtual std::optional<SymmetricKey> pairwise(NodeId u, NodeId v) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Per-node storage cost in bytes (scheme-dependent), for overhead tables.
  [[nodiscard]] virtual std::size_t storage_bytes_per_node() const = 0;
};

/// Trivial scheme: every node carries K_uv = H(master | min(u,v) | max(u,v))
/// material implicitly (models a KDC/base-station-assisted setup). Always
/// succeeds; zero resilience if the master secret leaks. Default for
/// protocol simulations because the paper assumes universal pairwise keys.
class KdcScheme final : public KeyPredistribution {
 public:
  explicit KdcScheme(SymmetricKey master) : master_(std::move(master)) {}
  static std::unique_ptr<KdcScheme> from_seed(std::uint64_t seed);

  void provision(NodeId) override {}
  [[nodiscard]] std::optional<SymmetricKey> pairwise(NodeId u, NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "kdc"; }
  [[nodiscard]] std::size_t storage_bytes_per_node() const override { return kKeySize; }

 private:
  SymmetricKey master_;
};

}  // namespace snd::crypto
