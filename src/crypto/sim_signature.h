// Simulated digital signatures for the Parno et al. baseline.
//
// The baseline (paper reference [14]) has every node sign its location
// claim with public-key cryptography so that any witness can verify it.
// Implementing ECDSA is out of scope for the comparison -- its metrics are
// message counts, byte counts, and sign/verify operation counts -- so we
// model signatures with a trusted keystore: sign(u, msg) produces
// HMAC(K_u, msg) truncated to the ECDSA-160 signature size, and verify
// recomputes it through the same store. Soundness against forgery by
// *non-compromised* identities is preserved (an attacker without K_u cannot
// produce a valid tag), which is the property the baseline relies on; a
// compromised node's key signs anything, exactly as with real ECDSA.
// Documented as a substitution in DESIGN.md §2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "crypto/hmac.h"
#include "crypto/key.h"
#include "util/ids.h"

namespace snd::crypto {

/// Size of an ECDSA-160 signature as assumed by Parno et al. (two 20-byte
/// field elements); used for byte accounting.
inline constexpr std::size_t kSignatureSize = 40;

using Signature = std::array<std::uint8_t, kSignatureSize>;

class SimSignatureAuthority {
 public:
  explicit SimSignatureAuthority(std::uint64_t seed);

  /// Issues a signing key for a node (idempotent).
  void enroll(NodeId node);

  /// Signs on behalf of `node`. In the simulation only the node itself (or
  /// an adversary that compromised it) calls this.
  [[nodiscard]] Signature sign(NodeId node, std::span<const std::uint8_t> message) const;

  [[nodiscard]] bool verify(NodeId node, std::span<const std::uint8_t> message,
                            const Signature& signature) const;

  [[nodiscard]] std::uint64_t sign_ops() const { return sign_ops_; }
  [[nodiscard]] std::uint64_t verify_ops() const { return verify_ops_; }
  void reset_counters();

 private:
  [[nodiscard]] SymmetricKey node_key(NodeId node) const;

  SymmetricKey root_;
  std::unordered_map<NodeId, bool> enrolled_;
  mutable std::uint64_t sign_ops_ = 0;
  mutable std::uint64_t verify_ops_ = 0;
};

}  // namespace snd::crypto
