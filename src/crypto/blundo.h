// Blundo et al. polynomial-based pairwise key predistribution, the building
// block of Liu-Ning's polynomial pool scheme (paper reference [13]).
//
// A trusted server samples a symmetric bivariate polynomial
//   f(x, y) = sum_{i,j <= lambda} a_ij x^i y^j   with a_ij = a_ji
// over GF(q). Node u stores the univariate share f(u, y) (lambda+1
// coefficients). Any two nodes compute the same key f(u, v) = f(v, u) from
// their own shares; an adversary needs more than lambda colluding shares to
// reconstruct f. We run kParallelPolys independent polynomials and hash the
// concatenated evaluations so the derived key has full width.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/keypredist.h"
#include "util/rng.h"

namespace snd::crypto {

/// GF(q) with q = 2^31 - 1 (Mersenne prime); element ops used by the scheme
/// and by the collusion-attack test that reconstructs f via interpolation.
namespace gf {
inline constexpr std::uint64_t kPrime = (1ULL << 31) - 1;
std::uint64_t add(std::uint64_t a, std::uint64_t b);
std::uint64_t sub(std::uint64_t a, std::uint64_t b);
std::uint64_t mul(std::uint64_t a, std::uint64_t b);
std::uint64_t pow(std::uint64_t base, std::uint64_t exp);
std::uint64_t inv(std::uint64_t a);
}  // namespace gf

class BlundoScheme final : public KeyPredistribution {
 public:
  /// lambda: collusion threshold (degree). Storage per node grows linearly.
  BlundoScheme(std::uint64_t seed, std::size_t lambda);

  void provision(NodeId node) override;
  [[nodiscard]] std::optional<SymmetricKey> pairwise(NodeId u, NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "blundo"; }
  [[nodiscard]] std::size_t storage_bytes_per_node() const override;

  [[nodiscard]] std::size_t lambda() const { return lambda_; }

  /// A provisioned node's share of polynomial `poly`: coefficients of
  /// f_poly(node, y), lowest degree first. Exposed so the adversary model
  /// (and the collusion test) can steal exactly what a node stores.
  [[nodiscard]] const std::vector<std::uint64_t>& share(NodeId node, std::size_t poly) const;

  /// Evaluates the share polynomial at y (what a node computes on-line).
  static std::uint64_t evaluate_share(const std::vector<std::uint64_t>& share, std::uint64_t y);

  static constexpr std::size_t kParallelPolys = 8;

 private:
  /// Maps GF element of the master polynomial: a_ij with i <= j.
  [[nodiscard]] std::uint64_t coefficient(std::size_t poly, std::size_t i, std::size_t j) const;

  std::size_t lambda_;
  // coeffs_[poly][i][j] symmetric matrix of polynomial coefficients.
  std::vector<std::vector<std::vector<std::uint64_t>>> coeffs_;
  std::unordered_map<NodeId, std::vector<std::vector<std::uint64_t>>> shares_;
};

}  // namespace snd::crypto
