#include "crypto/secure_channel.h"

#include "crypto/stream_cipher.h"

namespace snd::crypto {

SecureChannel::SecureChannel(std::uint64_t self, std::uint64_t peer,
                             const SymmetricKey& pairwise_key)
    : send_enc_(derive_pair_key(pairwise_key, "snd.chan.enc", self, peer)),
      send_mac_(derive_pair_key(pairwise_key, "snd.chan.mac", self, peer)),
      recv_enc_(derive_pair_key(pairwise_key, "snd.chan.enc", peer, self)),
      recv_mac_(derive_pair_key(pairwise_key, "snd.chan.mac", peer, self)) {}

util::Bytes SecureChannel::seal(std::span<const std::uint8_t> plaintext) {
  const std::uint64_t seq = ++send_seq_;
  util::Bytes out;
  util::put_u64(out, seq);
  const util::Bytes ciphertext = ctr_crypt(send_enc_, seq, plaintext);
  util::put_bytes(out, ciphertext);
  const ShortMac mac = short_mac(send_mac_, out);
  util::put_bytes(out, mac);
  return out;
}

std::optional<util::Bytes> SecureChannel::open(std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kOverheadBytes) return std::nullopt;
  const auto body = sealed.first(sealed.size() - kShortMacSize);
  const auto mac = sealed.last(kShortMacSize);
  if (!verify_short_mac(recv_mac_, body, mac)) return std::nullopt;

  util::ByteReader reader(body);
  const auto seq = reader.u64();
  if (!seq || *seq <= recv_seq_) return std::nullopt;  // replayed or reordered
  recv_seq_ = *seq;

  const auto ciphertext = reader.bytes(reader.remaining());
  return ctr_crypt(recv_enc_, *seq, *ciphertext);
}

}  // namespace snd::crypto
