#include "crypto/sha256.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace snd::crypto {

namespace {

// Per-thread so parallel trial workers (--jobs > 1) never cross-contaminate
// each other's overhead accounting; each worker resets/reads around its own
// trial and folds the count into the trial result.
thread_local std::uint64_t t_hash_ops = 0;

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

#if defined(__x86_64__) || defined(__i386__)

/// One block through the SHA extension (sha256rnds2 / sha256msg1 /
/// sha256msg2). This is the same function computed by dedicated hardware, so
/// digests are bit-identical to the portable compressor and dispatch is
/// purely a speed decision. Round constants are loaded from
/// detail::kRoundConstants instead of being re-typed as vector literals so
/// the two compressors cannot drift apart.
__attribute__((target("sha,sse4.1,ssse3"))) void sha256_compress_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* block) {
  const __m128i bswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto* quads = reinterpret_cast<const __m128i*>(block);
  const auto* k = reinterpret_cast<const __m128i*>(detail::kRoundConstants.data());

  // Repack {a..d},{e..h} into the ABEF/CDGH register layout sha256rnds2 wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  st1 = _mm_shuffle_epi32(st1, 0x1B);
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);
  const __m128i save0 = st0;
  const __m128i save1 = st1;

  __m128i m[4];
  for (int i = 0; i < 4; ++i) m[i] = _mm_shuffle_epi8(_mm_loadu_si128(quads + i), bswap);

  // Sixteen groups of four rounds; the message quads rotate through m[0..3]
  // with msg1/msg2 extending the schedule in place (constant trip count, so
  // the compiler unrolls this back into the canonical straight-line form).
  for (int g = 0; g < 16; ++g) {
    __m128i msg = _mm_add_epi32(m[g & 3], _mm_loadu_si128(k + g));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    if (g >= 3 && g < 15) {
      const __m128i shifted = _mm_alignr_epi8(m[g & 3], m[(g + 3) & 3], 4);
      m[(g + 1) & 3] = _mm_sha256msg2_epu32(_mm_add_epi32(m[(g + 1) & 3], shifted), m[g & 3]);
    }
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    if (g >= 1 && g < 13) m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], m[g & 3]);
  }

  st0 = _mm_add_epi32(st0, save0);
  st1 = _mm_add_epi32(st1, save1);

  tmp = _mm_shuffle_epi32(st0, 0x1B);
  st1 = _mm_shuffle_epi32(st1, 0xB1);
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);
  st1 = _mm_alignr_epi8(st1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data()), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data() + 4), st1);
}

bool shani_supported() {
  static const bool ok = __builtin_cpu_supports("sha") != 0 &&
                         __builtin_cpu_supports("sse4.1") != 0 &&
                         __builtin_cpu_supports("ssse3") != 0;
  return ok;
}

#endif  // x86

}  // namespace

std::uint64_t Digest::prefix64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | bytes[static_cast<std::size_t>(i)];
  return v;
}

namespace detail {

void sha256_compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* block) {
  // Single-stream hardware path for the traffic that cannot ride the
  // multi-buffer engine (receive-side HMAC verifies, one-off derivations).
  // Gated like every wide path: SND_SIMD=0 or a forced-scalar tier restores
  // the portable loop below, which is also the non-x86 and pre-SHA-NI path.
#if defined(__x86_64__) || defined(__i386__)
  if (shani_supported() && util::simd_enabled() &&
      util::active_simd_tier() != util::SimdTier::kScalar) {
    sha256_compress_shani(state, block);
    return;
  }
#endif
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) w[static_cast<std::size_t>(i)] = load_be32(block + 4 * i);
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void add_hash_ops(std::uint64_t n) { t_hash_ops += n; }

}  // namespace detail

Sha256::Sha256() : state_(detail::kInitialState) {}

void Sha256::process_block(const std::uint8_t* block) {
  ++t_hash_ops;
  detail::sha256_compress(state_, block);
}

Sha256::Midstate Sha256::midstate() const {
  assert(!finalized_);
  Midstate m;
  m.state = state_;
  m.tail = buffer_;
  m.tail_len = buffered_;
  m.total_bytes = total_bytes_;
  return m;
}

Sha256 Sha256::resume(const Midstate& m) {
  Sha256 ctx;
  ctx.state_ = m.state;
  ctx.buffer_ = m.tail;
  ctx.buffered_ = m.tail_len;
  ctx.total_bytes_ = m.total_bytes;
  return ctx;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  if (data.empty()) return *this;  // empty spans may carry a null data()
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view text) {
  return update(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha256& Sha256::update_framed(std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 4> len;
  store_be32(len.data(), static_cast<std::uint32_t>(data.size()));
  update(len);
  return update(data);
}

Sha256& Sha256::update_framed(std::string_view text) {
  return update_framed(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Digest Sha256::finalize() {
  assert(!finalized_);
  finalized_ = true;

  const std::uint64_t bit_length = total_bytes_ * 8;
  // The 0x80 marker, zero run, and length field go through one update() as a
  // prebuilt trailer: the byte-at-a-time padding loop this replaces cost a
  // call per zero byte, which dominated finalize on the per-MAC hot path.
  // The absorbed byte sequence (and thus every block boundary) is unchanged.
  std::array<std::uint8_t, 72> trailer{};
  trailer[0] = 0x80;
  const std::size_t pad = (buffered_ < 56 ? 56 : 120) - buffered_;
  for (int i = 0; i < 8; ++i)
    trailer[pad + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  update(std::span(trailer.data(), pad + 8));
  assert(buffered_ == 0);

  Digest out;
  for (int i = 0; i < 8; ++i) store_be32(out.bytes.data() + 4 * i, state_[static_cast<std::size_t>(i)]);
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) { return Sha256().update(data).finalize(); }

Digest Sha256::hash(std::string_view text) { return Sha256().update(text).finalize(); }

std::uint64_t hash_op_count() { return t_hash_ops; }

void reset_hash_op_count() { t_hash_ops = 0; }

}  // namespace snd::crypto
