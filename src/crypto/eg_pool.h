// Eschenauer-Gligor random key predistribution (paper reference [7]) with
// the Chan-Perrig-Song q-composite generalization (paper reference [4]).
//
// A pool of `pool_size` keys is generated off-line; each node is loaded with
// a random `ring_size`-subset (its key ring). Two nodes share a pairwise key
// iff their rings intersect in at least q keys (q = 1 recovers the classic
// EG scheme); the derived key hashes every shared pool key together with the
// (ordered) identity pair, matching shared-key discovery + link-key
// derivation of the original schemes. Larger q strengthens resilience
// against small-scale node capture at the price of connectivity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/keypredist.h"
#include "util/rng.h"

namespace snd::crypto {

class EschenauerGligorScheme final : public KeyPredistribution {
 public:
  /// q = 1: classic EG; q > 1: q-composite (requires q shared pool keys).
  EschenauerGligorScheme(std::uint64_t seed, std::size_t pool_size, std::size_t ring_size,
                         std::size_t q = 1);

  void provision(NodeId node) override;
  [[nodiscard]] std::optional<SymmetricKey> pairwise(NodeId u, NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "eschenauer-gligor"; }
  [[nodiscard]] std::size_t storage_bytes_per_node() const override;

  /// Sorted pool-key indices held by a provisioned node.
  [[nodiscard]] const std::vector<std::uint32_t>& ring(NodeId node) const;

  /// Analytical connectivity: P(two rings share at least q keys) for the
  /// configured pool/ring sizes (the EG formula generalized to q-composite).
  [[nodiscard]] double analytical_share_probability() const;

  /// Resilience metric from the q-composite paper: the probability that an
  /// adversary who captured `captured_nodes` rings can decrypt the link key
  /// of a random uncompromised pair.
  [[nodiscard]] double analytical_compromise_probability(std::size_t captured_nodes) const;

  [[nodiscard]] std::size_t pool_size() const { return pool_size_; }
  [[nodiscard]] std::size_t ring_size() const { return ring_size_; }
  [[nodiscard]] std::size_t q() const { return q_; }

 private:
  /// P(two rings share exactly `i` keys).
  [[nodiscard]] double probability_exactly_shared(std::size_t i) const;

  std::size_t pool_size_;
  std::size_t ring_size_;
  std::size_t q_ = 1;
  SymmetricKey pool_root_;  // pool key i = H(root | i)
  mutable util::Rng rng_;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> rings_;
};

}  // namespace snd::crypto
