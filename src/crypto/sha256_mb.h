// Multi-buffer SHA-256: independent digests computed 4 or 8 streams at a
// time. SHA-256 has no cross-message data flow, so W messages can share one
// pass of the compression function with the working variables held in W-lane
// vectors -- each lane performs exactly the 32-bit arithmetic of the scalar
// code, making the digests bit-identical to crypto::Sha256 by construction.
//
// HashBatch is the collection point: hot paths that used to hash one item
// at a time (commitment generation over a neighbor set, binding-record
// flood MACs, service recompute rechecks) append jobs -- optionally resuming
// a saved midstate, which is how batched HMAC reuses the ipad/opad work --
// and drain them through run(). Dispatch picks the widest kernel the CPU
// offers (AVX2 x8, SSE2 x4, portable 4-wide scalar otherwise; see
// util::active_simd_tier()); SND_SIMD=0 or a batch of one job falls back to
// the serial seed path. Ragged batches are fine: lanes retire as their
// (padded) block streams end and the last survivor finishes scalar.
//
// The per-thread compression counter (crypto::hash_op_count, feeding the
// §4.3 overhead bench) is advanced by the number of *active lanes* per wide
// pass, so a digest costs the same op count batched or serial -- asserted by
// a regression test.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace snd::crypto {

class HashBatch {
 public:
  /// Writer handle for one pending job; mirrors Sha256's update interface
  /// so the scalar and batched derivations share absorb code. Handles stay
  /// valid across add() calls (they index, not point).
  class Job {
   public:
    Job& update(std::span<const std::uint8_t> data);
    Job& update(std::string_view text);
    Job& update_framed(std::span<const std::uint8_t> data);
    Job& update_framed(std::string_view text);
    Job& update_u64(std::uint64_t v);
    [[nodiscard]] std::size_t index() const { return index_; }

   private:
    friend class HashBatch;
    Job(HashBatch* batch, std::size_t index) : batch_(batch), index_(index) {}
    HashBatch* batch_;
    std::size_t index_;
  };

  /// Starts a fresh-context job.
  Job add();
  /// Starts a job resuming `base` (e.g. an HMAC inner/outer midstate).
  Job add(const Sha256& base);

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Computes every pending digest. Wide when util::simd_enabled() and at
  /// least two jobs are pending; serial scalar otherwise. Digests and the
  /// per-thread compression count are identical either way.
  void run();

  /// Digest of the index-th job added; valid after run() until clear().
  [[nodiscard]] const Digest& digest(std::size_t index) const;

  /// Forgets all jobs and digests; job buffer capacity is retained so a
  /// steady-state fill/run/clear cycle stops allocating.
  void clear();

 private:
  struct JobState {
    /// Chaining state after `absorbed` bytes (a multiple of 64).
    std::array<std::uint32_t, 8> state{};
    std::uint64_t absorbed = 0;
    /// Message bytes still to process (any midstate tail is prepended here
    /// at add() time, so block boundaries are at data offsets 0 mod 64).
    util::Bytes data;
    Digest digest;
  };

  JobState& start_job();
  void run_serial();
  void run_wide();

  /// Job arena: the first `live_` entries are the current batch; clear()
  /// only resets `live_`, so each slot's data buffer is recycled.
  std::vector<JobState> jobs_;
  std::size_t live_ = 0;
  bool ran_ = false;
};

}  // namespace snd::crypto
