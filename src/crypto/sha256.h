// SHA-256 (FIPS 180-4), implemented from scratch so the library has no
// external crypto dependency. This is the one-way hash H(.) the paper's
// protocol is built on; all commitments, verification keys, and MACs reduce
// to it. A per-thread operation counter feeds the §4.3 overhead bench.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.h"

namespace snd::crypto {

inline constexpr std::size_t kDigestSize = 32;

/// A 256-bit hash value with value semantics.
struct Digest {
  std::array<std::uint8_t, kDigestSize> bytes{};

  friend bool operator==(const Digest&, const Digest&) = default;
  [[nodiscard]] std::span<const std::uint8_t> span() const { return bytes; }
  [[nodiscard]] std::string hex() const { return util::to_hex(bytes); }
  /// First 8 bytes as a big-endian integer, for hashing into containers.
  [[nodiscard]] std::uint64_t prefix64() const;
};

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view text);
  /// Appends a single length-framed field: u32 length then the bytes.
  /// Framing makes multi-field hashes injective (no ambiguity between
  /// H(a|bc) and H(ab|c)), which the paper's commitments implicitly need.
  Sha256& update_framed(std::span<const std::uint8_t> data);
  Sha256& update_framed(std::string_view text);
  /// Appends a big-endian u64 field.
  Sha256& update_u64(std::uint64_t v);

  /// Finalizes and returns the digest; the context must not be reused after.
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// Number of SHA-256 compression-function invocations on the *calling
/// thread* since thread start or the last reset. Per-thread (plain
/// thread_local increment) so parallel trial workers account independently;
/// fold per trial where a cross-thread total is wanted.
std::uint64_t hash_op_count();
void reset_hash_op_count();

}  // namespace snd::crypto
