// SHA-256 (FIPS 180-4), implemented from scratch so the library has no
// external crypto dependency. This is the one-way hash H(.) the paper's
// protocol is built on; all commitments, verification keys, and MACs reduce
// to it. A per-thread operation counter feeds the §4.3 overhead bench.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.h"

namespace snd::crypto {

inline constexpr std::size_t kDigestSize = 32;

/// A 256-bit hash value with value semantics.
struct Digest {
  std::array<std::uint8_t, kDigestSize> bytes{};

  friend bool operator==(const Digest&, const Digest&) = default;
  [[nodiscard]] std::span<const std::uint8_t> span() const { return bytes; }
  [[nodiscard]] std::string hex() const { return util::to_hex(bytes); }
  /// First 8 bytes as a big-endian integer, for hashing into containers.
  [[nodiscard]] std::uint64_t prefix64() const;
};

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view text);
  /// Appends a single length-framed field: u32 length then the bytes.
  /// Framing makes multi-field hashes injective (no ambiguity between
  /// H(a|bc) and H(ab|c)), which the paper's commitments implicitly need.
  Sha256& update_framed(std::span<const std::uint8_t> data);
  Sha256& update_framed(std::string_view text);
  /// Appends a big-endian u64 field. Header-inline: id/counter fields are
  /// absorbed once per MAC on the hot path, so the encode is cheaper than an
  /// out-of-line call.
  Sha256& update_u64(std::uint64_t v) {
    std::array<std::uint8_t, 8> buf;
    for (int i = 7; i >= 0; --i) {
      buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
    return update(buf);
  }

  /// Finalizes and returns the digest; the context must not be reused after.
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view text);

  /// Snapshot of a streaming context for the multi-buffer engine
  /// (crypto/sha256_mb): the chaining state after the blocks absorbed so
  /// far, plus the buffered sub-block tail.
  struct Midstate {
    std::array<std::uint32_t, 8> state{};
    std::array<std::uint8_t, 64> tail{};
    std::size_t tail_len = 0;
    /// Total bytes absorbed so far, tail included.
    std::uint64_t total_bytes = 0;
  };
  [[nodiscard]] Midstate midstate() const;
  /// Rebuilds a context from a snapshot; behaves exactly like the context
  /// midstate() was taken from (same digest, same compression count).
  static Sha256 resume(const Midstate& m);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// Number of SHA-256 compression-function invocations on the *calling
/// thread* since thread start or the last reset. Per-thread (plain
/// thread_local increment) so parallel trial workers account independently;
/// fold per trial where a cross-thread total is wanted.
std::uint64_t hash_op_count();
void reset_hash_op_count();

namespace detail {

/// One scalar compression-function application, shared between Sha256 and
/// the multi-buffer engine's single-lane tail so the two can never diverge.
/// Does NOT touch the per-thread op counter -- callers account explicitly
/// (Sha256 counts 1 per block, a W-lane wide pass counts W).
void sha256_compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* block);

/// Op-counter hook for the wide engine.
void add_hash_ops(std::uint64_t n);

/// FIPS 180-4 round constants / initial state, shared with the wide kernels.
inline constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace detail

}  // namespace snd::crypto
