#include "crypto/blundo.h"

#include <cassert>
#include <stdexcept>

#include "crypto/sha256.h"

namespace snd::crypto {

namespace gf {

std::uint64_t add(std::uint64_t a, std::uint64_t b) { return (a + b) % kPrime; }

std::uint64_t sub(std::uint64_t a, std::uint64_t b) { return (a + kPrime - b % kPrime) % kPrime; }

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  // Operands < 2^31, so the product fits in 64 bits exactly.
  return (a % kPrime) * (b % kPrime) % kPrime;
}

std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  base %= kPrime;
  while (exp > 0) {
    if (exp & 1) result = mul(result, base);
    base = mul(base, base);
    exp >>= 1;
  }
  return result;
}

std::uint64_t inv(std::uint64_t a) {
  // Fermat: a^(q-2) mod q.
  assert(a % kPrime != 0);
  return pow(a, kPrime - 2);
}

}  // namespace gf

BlundoScheme::BlundoScheme(std::uint64_t seed, std::size_t lambda) : lambda_(lambda) {
  util::Rng rng(seed);
  coeffs_.resize(kParallelPolys);
  for (auto& matrix : coeffs_) {
    matrix.assign(lambda_ + 1, std::vector<std::uint64_t>(lambda_ + 1, 0));
    for (std::size_t i = 0; i <= lambda_; ++i) {
      for (std::size_t j = i; j <= lambda_; ++j) {
        const std::uint64_t a = rng.uniform_int(gf::kPrime);
        matrix[i][j] = a;
        matrix[j][i] = a;  // symmetry gives f(u,v) == f(v,u)
      }
    }
  }
}

std::uint64_t BlundoScheme::coefficient(std::size_t poly, std::size_t i, std::size_t j) const {
  return coeffs_[poly][i][j];
}

void BlundoScheme::provision(NodeId node) {
  if (shares_.contains(node)) return;
  // Node IDs map to nonzero field elements; id 0 maps to q-1 to avoid the
  // degenerate point x = 0.
  const std::uint64_t x = node % gf::kPrime == 0 ? gf::kPrime - 1 : node % gf::kPrime;
  std::vector<std::vector<std::uint64_t>> node_shares(kParallelPolys);
  for (std::size_t p = 0; p < kParallelPolys; ++p) {
    // Share coefficient for y^j: sum_i a_ij * x^i.
    std::vector<std::uint64_t>& share = node_shares[p];
    share.assign(lambda_ + 1, 0);
    std::uint64_t x_pow = 1;
    for (std::size_t i = 0; i <= lambda_; ++i) {
      for (std::size_t j = 0; j <= lambda_; ++j) {
        share[j] = gf::add(share[j], gf::mul(coefficient(p, i, j), x_pow));
      }
      x_pow = gf::mul(x_pow, x);
    }
  }
  shares_.emplace(node, std::move(node_shares));
}

std::uint64_t BlundoScheme::evaluate_share(const std::vector<std::uint64_t>& share,
                                           std::uint64_t y) {
  // Horner evaluation of the univariate share at y.
  std::uint64_t acc = 0;
  for (auto it = share.rbegin(); it != share.rend(); ++it) acc = gf::add(gf::mul(acc, y), *it);
  return acc;
}

std::optional<SymmetricKey> BlundoScheme::pairwise(NodeId u, NodeId v) const {
  if (u == v) return std::nullopt;
  const auto it = shares_.find(u);
  if (it == shares_.end() || !shares_.contains(v)) return std::nullopt;
  const std::uint64_t y = v % gf::kPrime == 0 ? gf::kPrime - 1 : v % gf::kPrime;

  Sha256 ctx;
  ctx.update_framed("snd.blundo.key");
  for (std::size_t p = 0; p < kParallelPolys; ++p) {
    ctx.update_u64(evaluate_share(it->second[p], y));
  }
  return SymmetricKey::from_digest(ctx.finalize());
}

std::size_t BlundoScheme::storage_bytes_per_node() const {
  // kParallelPolys shares of lambda+1 field elements, 4 bytes each.
  return kParallelPolys * (lambda_ + 1) * 4;
}

const std::vector<std::uint64_t>& BlundoScheme::share(NodeId node, std::size_t poly) const {
  const auto it = shares_.find(node);
  if (it == shares_.end()) throw std::out_of_range("BlundoScheme::share: node not provisioned");
  return it->second.at(poly);
}

}  // namespace snd::crypto
