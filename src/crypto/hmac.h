// HMAC-SHA256 (RFC 2104) and a short truncated-MAC helper sized for sensor
// network packets (TinySec-style 8-byte MACs).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/key.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace snd::crypto {

/// Full 32-byte HMAC-SHA256 tag.
Digest hmac_sha256(const SymmetricKey& key, std::span<const std::uint8_t> message);
Digest hmac_sha256(const SymmetricKey& key, std::string_view message);

inline constexpr std::size_t kShortMacSize = 8;
using ShortMac = std::array<std::uint8_t, kShortMacSize>;

/// Truncated MAC for byte-budgeted sensor packets.
ShortMac short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message);
/// Constant-time verification.
bool verify_short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message,
                      std::span<const std::uint8_t> mac);

/// Precomputed HMAC key: the ipad/opad blocks are hashed once into two
/// saved Sha256 midstates at construction, so each MAC afterwards resumes
/// from a midstate instead of re-deriving and re-compressing the pads. For
/// the protocol's short messages that halves the compression calls per tag.
/// Tags are bit-identical to hmac_sha256() by construction: both paths feed
/// the same byte sequence through the same contexts.
class HmacKey {
 public:
  /// Absent key; mac() must not be called until assigned from a real key.
  HmacKey() = default;
  explicit HmacKey(const SymmetricKey& key);

  [[nodiscard]] bool present() const { return present_; }

  [[nodiscard]] Digest mac(std::span<const std::uint8_t> message) const;
  [[nodiscard]] ShortMac short_mac(std::span<const std::uint8_t> message) const;
  [[nodiscard]] bool verify_short_mac(std::span<const std::uint8_t> message,
                                      std::span<const std::uint8_t> mac) const;

  /// Streaming interface: copy the inner midstate, update() it with the
  /// message fields directly (no intermediate buffer), then finish().
  [[nodiscard]] Sha256 inner_context() const { return inner_; }
  [[nodiscard]] Digest finish(Sha256&& inner) const;
  [[nodiscard]] ShortMac finish_short(Sha256&& inner) const;
  /// Outer midstate for the batched engine (crypto::HashBatch): a batched
  /// MAC drains the inner contexts wide, then the outer contexts over the
  /// inner digests -- the same byte flow as finish(), in two phases.
  [[nodiscard]] Sha256 outer_context() const { return outer_; }

 private:
  Sha256 inner_;  // state after absorbing key ^ ipad
  Sha256 outer_;  // state after absorbing key ^ opad
  bool present_ = false;
};

}  // namespace snd::crypto
