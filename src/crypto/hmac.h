// HMAC-SHA256 (RFC 2104) and a short truncated-MAC helper sized for sensor
// network packets (TinySec-style 8-byte MACs).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/key.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace snd::crypto {

/// Full 32-byte HMAC-SHA256 tag.
Digest hmac_sha256(const SymmetricKey& key, std::span<const std::uint8_t> message);
Digest hmac_sha256(const SymmetricKey& key, std::string_view message);

inline constexpr std::size_t kShortMacSize = 8;
using ShortMac = std::array<std::uint8_t, kShortMacSize>;

/// Truncated MAC for byte-budgeted sensor packets.
ShortMac short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message);
/// Constant-time verification.
bool verify_short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message,
                      std::span<const std::uint8_t> mac);

}  // namespace snd::crypto
