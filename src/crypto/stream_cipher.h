// Counter-mode stream cipher built on SHA-256: keystream block i is
// H(key | nonce | i). Paired with HMAC in SecureChannel (encrypt-then-MAC)
// this gives the paper's assumed "encrypted and authenticated" links without
// an external cipher dependency.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/key.h"
#include "util/bytes.h"

namespace snd::crypto {

/// XORs `data` with the keystream for (key, nonce). Symmetric: applying it
/// twice with the same parameters restores the plaintext.
util::Bytes ctr_crypt(const SymmetricKey& key, std::uint64_t nonce,
                      std::span<const std::uint8_t> data);

}  // namespace snd::crypto
