// Authenticated, encrypted, replay-protected pairwise channel.
//
// The paper assumes (§4): "the communication between any two nodes is
// encrypted and authenticated by their shared key, and a sequence number is
// used to remove replayed messages." SecureChannel implements exactly that:
// CTR encryption keyed per direction, encrypt-then-MAC with a truncated
// 8-byte tag, and a strictly increasing sequence number checked on receive.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/key.h"
#include "util/bytes.h"

namespace snd::crypto {

/// One endpoint of a bidirectional secure channel between `self` and `peer`.
/// Both endpoints must be constructed from the same pairwise key; direction
/// keys are derived from the (ordered) identity pair so the two directions
/// never share a keystream.
class SecureChannel {
 public:
  SecureChannel(std::uint64_t self, std::uint64_t peer, const SymmetricKey& pairwise_key);

  /// Encrypts and authenticates a payload; the result carries the sequence
  /// number, ciphertext, and MAC, ready to hand to the radio.
  util::Bytes seal(std::span<const std::uint8_t> plaintext);

  /// Verifies, replay-checks, and decrypts a sealed message from the peer.
  /// Returns std::nullopt on MAC failure, malformed input, or a sequence
  /// number at or below the last accepted one (replay).
  std::optional<util::Bytes> open(std::span<const std::uint8_t> sealed);

  [[nodiscard]] std::uint64_t messages_sent() const { return send_seq_; }
  [[nodiscard]] std::uint64_t last_accepted_seq() const { return recv_seq_; }

  /// Wire expansion added by seal(): sequence number + MAC.
  static constexpr std::size_t kOverheadBytes = 8 + kShortMacSize;

 private:
  SymmetricKey send_enc_;
  SymmetricKey send_mac_;
  SymmetricKey recv_enc_;
  SymmetricKey recv_mac_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace snd::crypto
