#include "crypto/sha256_mb.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <numeric>

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SND_SHA256_MB_X86 1
#else
#define SND_SHA256_MB_X86 0
#endif

namespace snd::crypto {

namespace {

using util::load_u32_be;
using util::store_u32_be;

/// Widest lane count any kernel uses; transposed state rows are padded to
/// this stride so every kernel shares one layout.
constexpr int kMaxWidth = 8;

/// One job's block stream: the full 64-byte blocks of its data buffer
/// followed by 1-2 padding blocks materialized in `pad` (FIPS 180-4: 0x80,
/// zeros, 64-bit bit length of the whole message including the midstate's
/// processed prefix).
struct Lane {
  std::size_t job = 0;
  const std::uint8_t* data = nullptr;
  std::size_t full_blocks = 0;
  std::array<std::uint8_t, 128> pad{};
  std::size_t pad_blocks = 0;
  std::size_t next = 0;

  [[nodiscard]] std::size_t total_blocks() const { return full_blocks + pad_blocks; }
  [[nodiscard]] const std::uint8_t* block(std::size_t i) const {
    return i < full_blocks ? data + 64 * i : pad.data() + 64 * (i - full_blocks);
  }
};

void build_lane(Lane& lane, std::size_t job, std::span<const std::uint8_t> data,
                std::uint64_t absorbed) {
  lane.job = job;
  lane.data = data.data();
  lane.full_blocks = data.size() / 64;
  lane.next = 0;
  const std::size_t rem = data.size() % 64;
  lane.pad.fill(0);
  if (rem > 0) std::memcpy(lane.pad.data(), data.data() + 64 * lane.full_blocks, rem);
  lane.pad[rem] = 0x80;
  const std::size_t pad_len = rem + 9 <= 64 ? 64 : 128;
  lane.pad_blocks = pad_len / 64;
  const std::uint64_t bit_length = (absorbed + data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    lane.pad[pad_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
}

// ---- Portable W-lane kernel ----------------------------------------------
// Identical 32-bit arithmetic to detail::sha256_compress, applied lane by
// lane; the compiler is free to vectorize the inner loops (SWAR-style), and
// on targets without SSE2/AVX2 this is the dispatch floor.
void compress_lanes_generic(std::uint32_t state[8][kMaxWidth],
                            const std::uint8_t* const blocks[kMaxWidth], int lanes) {
  std::uint32_t w[64][kMaxWidth];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < lanes; ++l) w[i][l] = load_u32_be(blocks[l] + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    for (int l = 0; l < lanes; ++l) {
      const std::uint32_t x15 = w[i - 15][l];
      const std::uint32_t x2 = w[i - 2][l];
      const std::uint32_t s0 = std::rotr(x15, 7) ^ std::rotr(x15, 18) ^ (x15 >> 3);
      const std::uint32_t s1 = std::rotr(x2, 17) ^ std::rotr(x2, 19) ^ (x2 >> 10);
      w[i][l] = w[i - 16][l] + s0 + w[i - 7][l] + s1;
    }
  }
  std::uint32_t v[8][kMaxWidth];
  for (int r = 0; r < 8; ++r) {
    for (int l = 0; l < lanes; ++l) v[r][l] = state[r][l];
  }
  for (int i = 0; i < 64; ++i) {
    for (int l = 0; l < lanes; ++l) {
      const std::uint32_t a = v[0][l];
      const std::uint32_t e = v[4][l];
      const std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
      const std::uint32_t ch = (e & v[5][l]) ^ (~e & v[6][l]);
      const std::uint32_t t1 = v[7][l] + s1 + ch + detail::kRoundConstants[static_cast<std::size_t>(i)] + w[i][l];
      const std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
      const std::uint32_t maj = (a & v[1][l]) ^ (a & v[2][l]) ^ (v[1][l] & v[2][l]);
      const std::uint32_t t2 = s0 + maj;
      v[7][l] = v[6][l];
      v[6][l] = v[5][l];
      v[5][l] = e;
      v[4][l] = v[3][l] + t1;
      v[3][l] = v[2][l];
      v[2][l] = v[1][l];
      v[1][l] = a;
      v[0][l] = t1 + t2;
    }
  }
  for (int r = 0; r < 8; ++r) {
    for (int l = 0; l < lanes; ++l) state[r][l] += v[r][l];
  }
}

#if SND_SHA256_MB_X86

// ---- SSE2 x4 -------------------------------------------------------------
// Wide integer adds are mod-2^32 exactly like the scalar code, so lanes are
// bit-identical by construction. Per-function target attributes keep the
// rest of the library buildable without -msse2/-mavx2 globally.

__attribute__((target("sse2"))) inline __m128i rotr32_sse2(__m128i v, int n) {
  return _mm_or_si128(_mm_srli_epi32(v, n), _mm_slli_epi32(v, 32 - n));
}

/// Schedule expansion + 64 rounds + Davies-Meyer add, shared between the
/// SSE2 gather loader and the SSSE3 transpose loader (always_inline so each
/// target-attributed caller gets its own copy; the body itself needs only
/// SSE2, a subset of both callers' ISAs).
__attribute__((target("sse2"), always_inline)) inline void sha256_rounds_x4(
    std::uint32_t state[8][kMaxWidth], __m128i w[64]) {
  for (int i = 16; i < 64; ++i) {
    const __m128i x15 = w[i - 15];
    const __m128i x2 = w[i - 2];
    const __m128i s0 = _mm_xor_si128(
        _mm_xor_si128(rotr32_sse2(x15, 7), rotr32_sse2(x15, 18)), _mm_srli_epi32(x15, 3));
    const __m128i s1 = _mm_xor_si128(
        _mm_xor_si128(rotr32_sse2(x2, 17), rotr32_sse2(x2, 19)), _mm_srli_epi32(x2, 10));
    w[i] = _mm_add_epi32(_mm_add_epi32(w[i - 16], s0), _mm_add_epi32(w[i - 7], s1));
  }
  __m128i v[8];
  for (int r = 0; r < 8; ++r) {
    v[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[r]));
  }
#pragma GCC unroll 8
  for (int i = 0; i < 64; ++i) {
    const __m128i a = v[0];
    const __m128i e = v[4];
    const __m128i s1 = _mm_xor_si128(
        _mm_xor_si128(rotr32_sse2(e, 6), rotr32_sse2(e, 11)), rotr32_sse2(e, 25));
    const __m128i ch = _mm_xor_si128(_mm_and_si128(e, v[5]), _mm_andnot_si128(e, v[6]));
    const __m128i k =
        _mm_set1_epi32(static_cast<int>(detail::kRoundConstants[static_cast<std::size_t>(i)]));
    const __m128i t1 = _mm_add_epi32(_mm_add_epi32(_mm_add_epi32(v[7], s1), _mm_add_epi32(ch, k)),
                                     w[i]);
    const __m128i s0 = _mm_xor_si128(
        _mm_xor_si128(rotr32_sse2(a, 2), rotr32_sse2(a, 13)), rotr32_sse2(a, 22));
    const __m128i maj = _mm_xor_si128(
        _mm_xor_si128(_mm_and_si128(a, v[1]), _mm_and_si128(a, v[2])), _mm_and_si128(v[1], v[2]));
    const __m128i t2 = _mm_add_epi32(s0, maj);
    v[7] = v[6];
    v[6] = v[5];
    v[5] = e;
    v[4] = _mm_add_epi32(v[3], t1);
    v[3] = v[2];
    v[2] = v[1];
    v[1] = a;
    v[0] = _mm_add_epi32(t1, t2);
  }
  for (int r = 0; r < 8; ++r) {
    const __m128i sum =
        _mm_add_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state[r])), v[r]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(state[r]), sum);
  }
}

__attribute__((target("sse2"))) void compress_lanes_sse2(
    std::uint32_t state[8][kMaxWidth], const std::uint8_t* const blocks[kMaxWidth]) {
  __m128i w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = _mm_set_epi32(static_cast<int>(load_u32_be(blocks[3] + 4 * i)),
                         static_cast<int>(load_u32_be(blocks[2] + 4 * i)),
                         static_cast<int>(load_u32_be(blocks[1] + 4 * i)),
                         static_cast<int>(load_u32_be(blocks[0] + 4 * i)));
  }
  sha256_rounds_x4(state, w);
}

/// SSSE3 loader: 4x4 u32 transposes (unpack) plus pshufb byte swaps replace
/// the 64 scalar big-endian loads of the plain SSE2 loader. Same w[] values
/// bit for bit -- only how the lanes' bytes reach the vector registers
/// changes; virtually every x86-64 CPU takes this path.
__attribute__((target("ssse3"))) void compress_lanes_ssse3(
    std::uint32_t state[8][kMaxWidth], const std::uint8_t* const blocks[kMaxWidth]) {
  const __m128i bswap =
      _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
  __m128i w[64];
  for (int g = 0; g < 4; ++g) {
    const __m128i q0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[0] + 16 * g));
    const __m128i q1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[1] + 16 * g));
    const __m128i q2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[2] + 16 * g));
    const __m128i q3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[3] + 16 * g));
    const __m128i t0 = _mm_unpacklo_epi32(q0, q1);
    const __m128i t1 = _mm_unpackhi_epi32(q0, q1);
    const __m128i t2 = _mm_unpacklo_epi32(q2, q3);
    const __m128i t3 = _mm_unpackhi_epi32(q2, q3);
    w[4 * g + 0] = _mm_shuffle_epi8(_mm_unpacklo_epi64(t0, t2), bswap);
    w[4 * g + 1] = _mm_shuffle_epi8(_mm_unpackhi_epi64(t0, t2), bswap);
    w[4 * g + 2] = _mm_shuffle_epi8(_mm_unpacklo_epi64(t1, t3), bswap);
    w[4 * g + 3] = _mm_shuffle_epi8(_mm_unpackhi_epi64(t1, t3), bswap);
  }
  sha256_rounds_x4(state, w);
}

[[nodiscard]] bool ssse3_supported() {
  static const bool supported = __builtin_cpu_supports("ssse3");
  return supported;
}

// ---- AVX2 x8 -------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i rotr32_avx2(__m256i v, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(v, n), _mm256_slli_epi32(v, 32 - n));
}

/// AVX2 loader: 8x8 u32 transpose (unpack32 / unpack64 / 128-bit permute)
/// plus vpshufb byte swaps, run once per 32-byte half of the block. Replaces
/// 128 scalar big-endian loads per block with 16 loads and 64 shuffles.
__attribute__((target("avx2"))) void compress_lanes_avx2(
    std::uint32_t state[8][kMaxWidth], const std::uint8_t* const blocks[kMaxWidth]) {
  const __m256i bswap = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12));
  __m256i w[64];
  for (int half = 0; half < 2; ++half) {
    __m256i r[8];
    for (int l = 0; l < 8; ++l) {
      r[l] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(blocks[l] + 32 * half));
    }
    __m256i t[8];
    for (int p = 0; p < 4; ++p) {
      t[2 * p] = _mm256_unpacklo_epi32(r[2 * p], r[2 * p + 1]);
      t[2 * p + 1] = _mm256_unpackhi_epi32(r[2 * p], r[2 * p + 1]);
    }
    __m256i u[8];
    u[0] = _mm256_unpacklo_epi64(t[0], t[2]);
    u[1] = _mm256_unpackhi_epi64(t[0], t[2]);
    u[2] = _mm256_unpacklo_epi64(t[1], t[3]);
    u[3] = _mm256_unpackhi_epi64(t[1], t[3]);
    u[4] = _mm256_unpacklo_epi64(t[4], t[6]);
    u[5] = _mm256_unpackhi_epi64(t[4], t[6]);
    u[6] = _mm256_unpacklo_epi64(t[5], t[7]);
    u[7] = _mm256_unpackhi_epi64(t[5], t[7]);
    for (int i = 0; i < 4; ++i) {
      w[8 * half + i] =
          _mm256_shuffle_epi8(_mm256_permute2x128_si256(u[i], u[i + 4], 0x20), bswap);
      w[8 * half + i + 4] =
          _mm256_shuffle_epi8(_mm256_permute2x128_si256(u[i], u[i + 4], 0x31), bswap);
    }
  }
  for (int i = 16; i < 64; ++i) {
    const __m256i x15 = w[i - 15];
    const __m256i x2 = w[i - 2];
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32_avx2(x15, 7), rotr32_avx2(x15, 18)), _mm256_srli_epi32(x15, 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32_avx2(x2, 17), rotr32_avx2(x2, 19)), _mm256_srli_epi32(x2, 10));
    w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0), _mm256_add_epi32(w[i - 7], s1));
  }
  __m256i v[8];
  for (int r = 0; r < 8; ++r) {
    v[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[r]));
  }
#pragma GCC unroll 8
  for (int i = 0; i < 64; ++i) {
    const __m256i a = v[0];
    const __m256i e = v[4];
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32_avx2(e, 6), rotr32_avx2(e, 11)), rotr32_avx2(e, 25));
    const __m256i ch =
        _mm256_xor_si256(_mm256_and_si256(e, v[5]), _mm256_andnot_si256(e, v[6]));
    const __m256i k = _mm256_set1_epi32(
        static_cast<int>(detail::kRoundConstants[static_cast<std::size_t>(i)]));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(v[7], s1), _mm256_add_epi32(ch, k)), w[i]);
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32_avx2(a, 2), rotr32_avx2(a, 13)), rotr32_avx2(a, 22));
    const __m256i maj =
        _mm256_xor_si256(_mm256_xor_si256(_mm256_and_si256(a, v[1]), _mm256_and_si256(a, v[2])),
                         _mm256_and_si256(v[1], v[2]));
    const __m256i t2 = _mm256_add_epi32(s0, maj);
    v[7] = v[6];
    v[6] = v[5];
    v[5] = e;
    v[4] = _mm256_add_epi32(v[3], t1);
    v[3] = v[2];
    v[2] = v[1];
    v[1] = a;
    v[0] = _mm256_add_epi32(t1, t2);
  }
  for (int r = 0; r < 8; ++r) {
    const __m256i sum =
        _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[r])), v[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[r]), sum);
  }
}

#endif  // SND_SHA256_MB_X86

}  // namespace

HashBatch::JobState& HashBatch::start_job() {
  assert(!ran_);
  if (live_ == jobs_.size()) jobs_.emplace_back();
  JobState& job = jobs_[live_++];
  job.data.clear();
  return job;
}

HashBatch::Job HashBatch::add() {
  JobState& job = start_job();
  job.state = detail::kInitialState;
  job.absorbed = 0;
  return Job(this, live_ - 1);
}

HashBatch::Job HashBatch::add(const Sha256& base) {
  JobState& job = start_job();
  const Sha256::Midstate m = base.midstate();
  job.state = m.state;
  // The sub-block tail moves into the data buffer, so `absorbed` (the
  // already-compressed prefix) is always a multiple of 64 and block
  // boundaries land at data offsets 0 mod 64.
  job.absorbed = m.total_bytes - m.tail_len;
  job.data.assign(m.tail.begin(), m.tail.begin() + static_cast<std::ptrdiff_t>(m.tail_len));
  return Job(this, live_ - 1);
}

HashBatch::Job& HashBatch::Job::update(std::span<const std::uint8_t> data) {
  if (!data.empty()) {
    util::Bytes& out = batch_->jobs_[index_].data;
    out.insert(out.end(), data.begin(), data.end());
  }
  return *this;
}

HashBatch::Job& HashBatch::Job::update(std::string_view text) {
  return update(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

HashBatch::Job& HashBatch::Job::update_framed(std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 4> len;
  store_u32_be(len.data(), static_cast<std::uint32_t>(data.size()));
  update(len);
  return update(data);
}

HashBatch::Job& HashBatch::Job::update_framed(std::string_view text) {
  return update_framed(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

HashBatch::Job& HashBatch::Job::update_u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> buf;
  for (int i = 7; i >= 0; --i) {
    buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return update(buf);
}

void HashBatch::run() {
  assert(!ran_);
  ran_ = true;
  if (live_ >= 2 && util::simd_enabled()) {
    run_wide();
  } else {
    run_serial();
  }
}

void HashBatch::run_serial() {
  // The seed path: replays each job through a plain Sha256, so digests and
  // op counts match a never-batched caller exactly.
  for (std::size_t i = 0; i < live_; ++i) {
    JobState& job = jobs_[i];
    Sha256::Midstate m;
    m.state = job.state;
    m.tail_len = 0;
    m.total_bytes = job.absorbed;
    Sha256 ctx = Sha256::resume(m);
    ctx.update(job.data);
    job.digest = ctx.finalize();
  }
}

void HashBatch::run_wide() {
  const util::SimdTier tier = util::active_simd_tier();
#if SND_SHA256_MB_X86
  const int width = tier == util::SimdTier::kAvx2 ? 8 : 4;
#else
  const int width = 4;
#endif

  // Scheduling scratch, reused across drains (ingest loops drain thousands
  // of batches; re-allocating 256 lanes per drain showed up in profiles).
  static thread_local std::vector<Lane> lanes;
  static thread_local std::vector<std::size_t> active;
  lanes.resize(live_);
  for (std::size_t i = 0; i < live_; ++i) {
    build_lane(lanes[i], i, jobs_[i].data, jobs_[i].absorbed);
  }
  active.resize(live_);
  std::iota(active.begin(), active.end(), std::size_t{0});

  std::uint32_t st[8][kMaxWidth];
  const std::uint8_t* blocks[kMaxWidth];

  // A group is the first min(width, active) lanes; it runs as many blocks
  // as its shortest member has left, so the state transposes amortize over
  // the whole run (uniform batches -- the common case -- transpose once per
  // job, not once per block). Exhausted lanes then retire, and when only
  // one remains it finishes on the shared scalar compressor.
  while (active.size() >= 2) {
    const int k = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(width),
                                                         active.size()));
    std::size_t run = lanes[active[0]].total_blocks() - lanes[active[0]].next;
    for (int l = 0; l < k; ++l) {
      Lane& lane = lanes[active[static_cast<std::size_t>(l)]];
      run = std::min(run, lane.total_blocks() - lane.next);
      for (int r = 0; r < 8; ++r) st[r][l] = jobs_[lane.job].state[static_cast<std::size_t>(r)];
    }
    // Idle vector lanes replay the last real lane so every load is defined.
    for (int l = k; l < kMaxWidth; ++l) {
      for (int r = 0; r < 8; ++r) st[r][l] = st[r][k - 1];
    }

    for (std::size_t b = 0; b < run; ++b) {
      for (int l = 0; l < k; ++l) {
        Lane& lane = lanes[active[static_cast<std::size_t>(l)]];
        blocks[l] = lane.block(lane.next + b);
      }
      for (int l = k; l < kMaxWidth; ++l) blocks[l] = blocks[k - 1];

#if SND_SHA256_MB_X86
      if (width == 8) {
        compress_lanes_avx2(st, blocks);
      } else if (tier == util::SimdTier::kSse2) {
        if (ssse3_supported()) {
          compress_lanes_ssse3(st, blocks);
        } else {
          compress_lanes_sse2(st, blocks);
        }
      } else {
        compress_lanes_generic(st, blocks, k);
      }
#else
      compress_lanes_generic(st, blocks, k);
#endif
    }
    detail::add_hash_ops(static_cast<std::uint64_t>(k) * run);

    for (int l = 0; l < k; ++l) {
      Lane& lane = lanes[active[static_cast<std::size_t>(l)]];
      for (int r = 0; r < 8; ++r) jobs_[lane.job].state[static_cast<std::size_t>(r)] = st[r][l];
      lane.next += run;
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t i) {
                                  return lanes[i].next == lanes[i].total_blocks();
                                }),
                 active.end());
  }

  if (active.size() == 1) {
    Lane& lane = lanes[active[0]];
    JobState& job = jobs_[lane.job];
    std::uint64_t n = 0;
    while (lane.next < lane.total_blocks()) {
      detail::sha256_compress(job.state, lane.block(lane.next));
      ++lane.next;
      ++n;
    }
    detail::add_hash_ops(n);
  }

  for (std::size_t i = 0; i < live_; ++i) {
    for (int r = 0; r < 8; ++r) {
      store_u32_be(jobs_[i].digest.bytes.data() + 4 * r,
                   jobs_[i].state[static_cast<std::size_t>(r)]);
    }
  }
}

const Digest& HashBatch::digest(std::size_t index) const {
  assert(ran_ && index < live_);
  return jobs_[index].digest;
}

void HashBatch::clear() {
  live_ = 0;
  ran_ = false;
}

}  // namespace snd::crypto
