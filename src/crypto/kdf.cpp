#include "crypto/kdf.h"

namespace snd::crypto {

SymmetricKey derive_key(const SymmetricKey& key, std::string_view label, std::uint64_t context) {
  Sha256 ctx;
  ctx.update_framed(label);
  ctx.update_framed(key.material());
  ctx.update_u64(context);
  return SymmetricKey::from_digest(ctx.finalize());
}

SymmetricKey derive_pair_key(const SymmetricKey& key, std::string_view label, std::uint64_t a,
                             std::uint64_t b) {
  Sha256 ctx;
  ctx.update_framed(label);
  ctx.update_framed(key.material());
  ctx.update_u64(a);
  ctx.update_u64(b);
  return SymmetricKey::from_digest(ctx.finalize());
}

}  // namespace snd::crypto
