#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace snd::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

struct Pads {
  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
};

Pads make_pads(const SymmetricKey& key) {
  // Keys are at most kKeySize (32) < kBlockSize, so no pre-hash step needed.
  std::array<std::uint8_t, kBlockSize> padded{};
  const auto material = key.material();
  std::memcpy(padded.data(), material.data(), material.size());

  Pads pads;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pads.ipad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x36);
    pads.opad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5c);
  }
  return pads;
}
}  // namespace

Digest hmac_sha256(const SymmetricKey& key, std::span<const std::uint8_t> message) {
  const Pads pads = make_pads(key);
  const Digest inner = Sha256().update(pads.ipad).update(message).finalize();
  return Sha256().update(pads.opad).update(inner.bytes).finalize();
}

Digest hmac_sha256(const SymmetricKey& key, std::string_view message) {
  return hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

ShortMac short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message) {
  const Digest full = hmac_sha256(key, message);
  ShortMac mac;
  std::memcpy(mac.data(), full.bytes.data(), mac.size());
  return mac;
}

bool verify_short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message,
                      std::span<const std::uint8_t> mac) {
  const ShortMac expected = short_mac(key, message);
  return util::constant_time_equal(expected, mac);
}

HmacKey::HmacKey(const SymmetricKey& key) {
  if (!key.present()) return;
  const Pads pads = make_pads(key);
  inner_.update(pads.ipad);
  outer_.update(pads.opad);
  present_ = true;
}

Digest HmacKey::mac(std::span<const std::uint8_t> message) const {
  Sha256 inner = inner_;
  inner.update(message);
  return finish(std::move(inner));
}

ShortMac HmacKey::short_mac(std::span<const std::uint8_t> message) const {
  const Digest full = mac(message);
  ShortMac tag;
  std::memcpy(tag.data(), full.bytes.data(), tag.size());
  return tag;
}

bool HmacKey::verify_short_mac(std::span<const std::uint8_t> message,
                               std::span<const std::uint8_t> mac) const {
  const ShortMac expected = short_mac(message);
  return util::constant_time_equal(expected, mac);
}

Digest HmacKey::finish(Sha256&& inner) const {
  const Digest inner_digest = inner.finalize();
  Sha256 outer = outer_;
  return outer.update(inner_digest.bytes).finalize();
}

ShortMac HmacKey::finish_short(Sha256&& inner) const {
  const Digest full = finish(std::move(inner));
  ShortMac tag;
  std::memcpy(tag.data(), full.bytes.data(), tag.size());
  return tag;
}

}  // namespace snd::crypto
