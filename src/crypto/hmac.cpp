#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace snd::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

Digest hmac_sha256(const SymmetricKey& key, std::span<const std::uint8_t> message) {
  // Keys are at most kKeySize (32) < kBlockSize, so no pre-hash step needed.
  std::array<std::uint8_t, kBlockSize> padded{};
  const auto material = key.material();
  std::memcpy(padded.data(), material.data(), material.size());

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5c);
  }

  const Digest inner = Sha256().update(ipad).update(message).finalize();
  return Sha256().update(opad).update(inner.bytes).finalize();
}

Digest hmac_sha256(const SymmetricKey& key, std::string_view message) {
  return hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

ShortMac short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message) {
  const Digest full = hmac_sha256(key, message);
  ShortMac mac;
  std::memcpy(mac.data(), full.bytes.data(), mac.size());
  return mac;
}

bool verify_short_mac(const SymmetricKey& key, std::span<const std::uint8_t> message,
                      std::span<const std::uint8_t> mac) {
  const ShortMac expected = short_mac(key, message);
  return util::constant_time_equal(expected, mac);
}

}  // namespace snd::crypto
