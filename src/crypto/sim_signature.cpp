#include "crypto/sim_signature.h"

#include <cstring>

#include "crypto/kdf.h"
#include "util/bytes.h"

namespace snd::crypto {

SimSignatureAuthority::SimSignatureAuthority(std::uint64_t seed)
    : root_(SymmetricKey::from_seed(seed ^ 0x51674a7bULL)) {}

void SimSignatureAuthority::enroll(NodeId node) { enrolled_[node] = true; }

SymmetricKey SimSignatureAuthority::node_key(NodeId node) const {
  return derive_key(root_, "snd.sig.node", node);
}

Signature SimSignatureAuthority::sign(NodeId node, std::span<const std::uint8_t> message) const {
  ++sign_ops_;
  const Digest tag = hmac_sha256(node_key(node), message);
  Signature sig{};
  std::memcpy(sig.data(), tag.bytes.data(), std::min(sig.size(), tag.bytes.size()));
  return sig;
}

bool SimSignatureAuthority::verify(NodeId node, std::span<const std::uint8_t> message,
                                   const Signature& signature) const {
  ++verify_ops_;
  const auto it = enrolled_.find(node);
  if (it == enrolled_.end()) return false;
  // Recompute through sign() semantics without double-counting sign ops.
  // The 32-byte tag fills the signature's prefix; the tail stays zero, so
  // compare against the padded form rather than reading past the digest.
  const Digest tag = hmac_sha256(node_key(node), message);
  Signature expected{};
  std::memcpy(expected.data(), tag.bytes.data(), std::min(expected.size(), tag.bytes.size()));
  return util::constant_time_equal(signature, expected);
}

void SimSignatureAuthority::reset_counters() {
  sign_ops_ = 0;
  verify_ops_ = 0;
}

}  // namespace snd::crypto
