#include "crypto/eg_pool.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/sha256.h"

namespace snd::crypto {

namespace {
/// log C(n, k) via lgamma; -inf encoded as a large negative for k > n.
double log_choose(double n, double k) {
  if (k < 0.0 || k > n) return -1e300;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}
}  // namespace

EschenauerGligorScheme::EschenauerGligorScheme(std::uint64_t seed, std::size_t pool_size,
                                               std::size_t ring_size, std::size_t q)
    : pool_size_(pool_size),
      ring_size_(std::min(ring_size, pool_size)),
      q_(std::max<std::size_t>(q, 1)),
      pool_root_(SymmetricKey::from_seed(seed ^ 0xe96f00cULL)),
      rng_(seed) {}

void EschenauerGligorScheme::provision(NodeId node) {
  if (rings_.contains(node)) return;
  const auto sample = rng_.sample_without_replacement(pool_size_, ring_size_);
  std::vector<std::uint32_t> ring(sample.begin(), sample.end());
  std::sort(ring.begin(), ring.end());
  rings_.emplace(node, std::move(ring));
}

std::optional<SymmetricKey> EschenauerGligorScheme::pairwise(NodeId u, NodeId v) const {
  if (u == v) return std::nullopt;
  const auto iu = rings_.find(u);
  const auto iv = rings_.find(v);
  if (iu == rings_.end() || iv == rings_.end()) return std::nullopt;

  std::vector<std::uint32_t> shared;
  std::set_intersection(iu->second.begin(), iu->second.end(), iv->second.begin(),
                        iv->second.end(), std::back_inserter(shared));
  if (shared.size() < q_) return std::nullopt;

  Sha256 ctx;
  ctx.update_framed("snd.eg.link");
  ctx.update_u64(std::min(u, v));
  ctx.update_u64(std::max(u, v));
  for (std::uint32_t pool_index : shared) {
    const Digest pool_key =
        Sha256().update_framed(pool_root_.material()).update_u64(pool_index).finalize();
    ctx.update(pool_key.bytes);
  }
  return SymmetricKey::from_digest(ctx.finalize());
}

std::size_t EschenauerGligorScheme::storage_bytes_per_node() const {
  return ring_size_ * kKeySize;
}

const std::vector<std::uint32_t>& EschenauerGligorScheme::ring(NodeId node) const {
  const auto it = rings_.find(node);
  if (it == rings_.end()) {
    throw std::out_of_range("EschenauerGligorScheme::ring: node not provisioned");
  }
  return it->second;
}

double EschenauerGligorScheme::probability_exactly_shared(std::size_t i) const {
  // Chan-Perrig-Song: p(i) = C(P,i) C(P-i, 2(m-i)) C(2(m-i), m-i) / C(P,m)^2.
  const auto p = static_cast<double>(pool_size_);
  const auto m = static_cast<double>(ring_size_);
  const auto x = static_cast<double>(i);
  if (x > m || 2.0 * (m - x) > p - x) return 0.0;
  const double log_p = log_choose(p, x) + log_choose(p - x, 2.0 * (m - x)) +
                       log_choose(2.0 * (m - x), m - x) - 2.0 * log_choose(p, m);
  return std::exp(log_p);
}

double EschenauerGligorScheme::analytical_share_probability() const {
  if (2 * ring_size_ > pool_size_ && q_ == 1) return 1.0;
  double miss = 0.0;
  for (std::size_t i = 0; i < q_; ++i) miss += probability_exactly_shared(i);
  return std::clamp(1.0 - miss, 0.0, 1.0);
}

double EschenauerGligorScheme::analytical_compromise_probability(
    std::size_t captured_nodes) const {
  // P(a given pool key is known to the adversary after capturing x rings).
  const double key_known =
      1.0 - std::pow(1.0 - static_cast<double>(ring_size_) / static_cast<double>(pool_size_),
                     static_cast<double>(captured_nodes));
  const double connect = analytical_share_probability();
  if (connect <= 0.0) return 0.0;
  double compromised = 0.0;
  for (std::size_t i = q_; i <= ring_size_; ++i) {
    compromised += std::pow(key_known, static_cast<double>(i)) * probability_exactly_shared(i);
  }
  return std::clamp(compromised / connect, 0.0, 1.0);
}

}  // namespace snd::crypto
