#include "crypto/key.h"

#include <cassert>
#include <cstring>

#include "util/bytes.h"

namespace snd::crypto {

namespace {
// Volatile write loop so the zeroization is not optimized away.
void secure_zero(std::uint8_t* data, std::size_t size) {
  volatile std::uint8_t* p = data;
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
}
}  // namespace

SymmetricKey SymmetricKey::from_bytes(std::span<const std::uint8_t> material) {
  SymmetricKey key;
  // Shorter material is zero-padded; longer material is compressed by
  // hashing so every input yields a full-entropy-width key.
  if (material.size() <= kKeySize) {
    std::memcpy(key.material_.data(), material.data(), material.size());
  } else {
    key.material_ = Sha256::hash(material).bytes;
  }
  key.present_ = true;
  return key;
}

SymmetricKey SymmetricKey::from_digest(const Digest& digest) {
  SymmetricKey key;
  key.material_ = digest.bytes;
  key.present_ = true;
  return key;
}

SymmetricKey SymmetricKey::from_seed(std::uint64_t seed) {
  return from_digest(Sha256().update("snd.key.seed").update_u64(seed).finalize());
}

SymmetricKey::SymmetricKey(SymmetricKey&& other) noexcept
    : material_(other.material_), present_(other.present_) {
  other.erase();
}

SymmetricKey& SymmetricKey::operator=(SymmetricKey&& other) noexcept {
  if (this != &other) {
    material_ = other.material_;
    present_ = other.present_;
    other.erase();
  }
  return *this;
}

void SymmetricKey::erase() {
  secure_zero(material_.data(), material_.size());
  present_ = false;
}

std::span<const std::uint8_t> SymmetricKey::material() const {
  assert(present_);
  return material_;
}

bool operator==(const SymmetricKey& a, const SymmetricKey& b) {
  if (a.present_ != b.present_) return false;
  if (!a.present_) return true;
  return util::constant_time_equal(a.material_, b.material_);
}

std::string SymmetricKey::hex() const {
  return present_ ? util::to_hex(material_) : "<erased>";
}

}  // namespace snd::crypto
