// Key derivation helpers used throughout the protocol:
//   - derive_key(k, label, ...) for domain-separated subkeys, and
//   - the paper's specific derivations (verification key K_u = H(K|u), etc.)
//     live in core/commitment.h; this header is the generic layer.
#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/key.h"
#include "crypto/sha256.h"

namespace snd::crypto {

/// Domain-separated subkey: H(label | key | context64).
SymmetricKey derive_key(const SymmetricKey& key, std::string_view label,
                        std::uint64_t context = 0);

/// Domain-separated subkey bound to two identities (order-sensitive).
SymmetricKey derive_pair_key(const SymmetricKey& key, std::string_view label,
                             std::uint64_t a, std::uint64_t b);

}  // namespace snd::crypto
