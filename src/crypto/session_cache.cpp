#include "crypto/session_cache.h"

#include <atomic>

#include "util/runtime_config.h"

namespace snd::crypto {

namespace {

std::atomic<bool>& fast_path_flag() {
  static std::atomic<bool> enabled{runtime_config().crypto_fast};
  return enabled;
}

}  // namespace

bool fast_path_enabled() { return fast_path_flag().load(std::memory_order_relaxed); }

void set_fast_path_enabled(bool enabled) {
  fast_path_flag().store(enabled, std::memory_order_relaxed);
}

const PairKeyCache::Entry& PairKeyCache::get(NodeId peer) {
  if (soa_) {
    if (const Entry* hit = entries_flat_.find(peer)) return *hit;
  } else if (const auto it = entries_.find(peer); it != entries_.end()) {
    return it->second;
  }

  auto derived = scheme_->pairwise(self_, peer);
  if (!derived || !derived->present()) return absent_;

  Entry entry;
  entry.key = std::move(*derived);
  entry.mac = HmacKey(entry.key);
  if (soa_) {
    Entry& slot = entries_flat_.get_or_insert(peer);
    slot = std::move(entry);
    return slot;
  }
  return entries_.emplace(peer, std::move(entry)).first->second;
}

}  // namespace snd::crypto
