#include "crypto/stream_cipher.h"

#include "crypto/sha256.h"

namespace snd::crypto {

util::Bytes ctr_crypt(const SymmetricKey& key, std::uint64_t nonce,
                      std::span<const std::uint8_t> data) {
  util::Bytes out(data.begin(), data.end());
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (offset < out.size()) {
    Sha256 ctx;
    ctx.update_framed("snd.ctr");
    ctx.update_framed(key.material());
    ctx.update_u64(nonce);
    ctx.update_u64(counter++);
    const Digest block = ctx.finalize();
    const std::size_t take = std::min(out.size() - offset, block.bytes.size());
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= block.bytes[i];
    offset += take;
  }
  return out;
}

}  // namespace snd::crypto
