#!/usr/bin/env python3
"""Bench trend gate: compare the current BENCH_*.json micro-benchmark
artifacts against the previous run's and flag regressions.

Usage:
    bench_trend.py --previous DIR --current DIR [--threshold 0.25] [--fail]

Both directories hold BENCH_micro_crypto.json / BENCH_micro_sim.json (any
BENCH_*.json present in both is compared). Tracked series are the numeric
leaves whose key names a per-operation cost ("*us_per*": lower is better).
A tracked mean more than --threshold above the previous run emits a GitHub
"::warning" annotation (or "::error" + exit 1 with --fail); missing previous
artifacts are not an error, so the gate degrades gracefully on the first
run, on forks, and on expired artifact retention.
"""

import argparse
import glob
import json
import os
import sys


def numeric_leaves(tree, prefix=""):
    """Flattens a JSON tree to {dotted.path: float} for numeric leaves."""
    out = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            out.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(tree, list):
        for i, value in enumerate(tree):
            out.update(numeric_leaves(value, f"{prefix}{i}."))
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        out[prefix.rstrip(".")] = float(tree)
    return out


def tracked(leaves):
    """The series worth gating: per-operation times ("*us_per*", lower is
    better) and throughputs ("*per_s*", higher is better)."""
    return {path: v for path, v in leaves.items()
            if "us_per" in path or "per_s" in path}


def higher_is_better(path):
    """Throughput series regress by dropping, not rising."""
    return "per_s" in path and "us_per" not in path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True, help="dir with the last run's BENCH_*.json")
    parser.add_argument("--current", required=True, help="dir with this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that trips the gate (default 0.25)")
    parser.add_argument("--fail", action="store_true",
                        help="exit non-zero on regression instead of only warning")
    args = parser.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current, "BENCH_*.json")))
    if not current_files:
        print(f"bench-trend: no BENCH_*.json under {args.current}; nothing to compare")
        return 0

    regressions = []
    compared = 0
    for current_path in current_files:
        name = os.path.basename(current_path)
        previous_path = os.path.join(args.previous, name)
        if not os.path.exists(previous_path):
            print(f"bench-trend: no previous {name}; skipping (first run or expired artifact)")
            continue
        try:
            with open(previous_path) as f:
                previous = tracked(numeric_leaves(json.load(f)))
            with open(current_path) as f:
                current = tracked(numeric_leaves(json.load(f)))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench-trend: cannot parse {name}: {e}; skipping")
            continue

        for path, now in sorted(current.items()):
            before = previous.get(path)
            if before is None:
                # A series that exists now but not before (new bench, renamed
                # key) must be visible, not silently untracked -- a rename
                # would otherwise disable the gate for that series forever.
                print(f"bench-trend: {name}:{path}: no comparable baseline "
                      f"(series absent from previous run); not compared")
                continue
            if before <= 0.0:
                # A zero/negative previous mean makes the ratio meaningless
                # (and used to crash older versions with a divide-by-zero).
                print(f"bench-trend: {name}:{path}: no comparable baseline "
                      f"(previous value {before:.3f} <= 0); not compared")
                continue
            compared += 1
            ratio = now / before
            if higher_is_better(path):
                regressed = ratio < 1.0 - args.threshold
            else:
                regressed = ratio > 1.0 + args.threshold
            marker = " <-- REGRESSION" if regressed else ""
            print(f"bench-trend: {name}:{path}: {before:.3f} -> {now:.3f} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%){marker}")
            if marker:
                regressions.append((name, path, before, now, ratio))

    for name, path, before, now, ratio in regressions:
        level = "error" if args.fail else "warning"
        verb = "dropped" if higher_is_better(path) else "slowed"
        print(f"::{level} title=bench regression::{name}:{path} {verb} "
              f"{abs(ratio - 1.0) * 100.0:.1f}% ({before:.3f} -> {now:.3f})")

    print(f"bench-trend: {compared} tracked series compared, "
          f"{len(regressions)} over the {args.threshold * 100.0:.0f}% threshold")
    return 1 if (regressions and args.fail) else 0


if __name__ == "__main__":
    sys.exit(main())
